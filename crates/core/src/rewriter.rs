//! The GT-Pin binary rewriter.
//!
//! Takes an encoded, machine-specific kernel binary (bytes), splices
//! profiling instruction sequences into it, repairs every branch
//! displacement, and re-encodes it. The injected code uses only the
//! reserved instrumentation registers `r120..r127`, so application
//! state is never perturbed (Section III-C of the paper).
//!
//! Three kinds of instrumentation are supported:
//!
//! * **basic-block counters** — three instructions at each block
//!   leader that atomically bump a per-block trace-buffer slot (one
//!   counter per block, *not* per instruction — the paper's key
//!   overhead reduction),
//! * **kernel timing** — an event-timer read at kernel entry and a
//!   timer-delta accumulation before each `eot`,
//! * **memory tracing** — a tagged trace-buffer append of the address
//!   register before every global send, feeding trace-driven cache
//!   simulation.

use gen_isa::encode::{decode_stream, encode_stream, leaders};
use gen_isa::{ExecSize, Instruction, Opcode, Reg, Src, Surface};
use serde::{Deserialize, Serialize};

use crate::static_info::StaticKernelInfo;

// Reserved instrumentation registers (all ≥ FIRST_INSTRUMENTATION_REG).
const R_SLOT: Reg = Reg(120);
const R_ONE: Reg = Reg(121);
const R_T0: Reg = Reg(122);
const R_T1: Reg = Reg(123);
const R_DELTA: Reg = Reg(124);
const R_TAG: Reg = Reg(125);

/// What to instrument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteConfig {
    /// Insert per-basic-block execution counters.
    pub count_basic_blocks: bool,
    /// Insert entry/exit timer reads accumulating per-thread cycles.
    pub time_kernels: bool,
    /// Insert address appends before every global send.
    pub trace_memory: bool,
    /// **Ablation:** count every instruction individually instead of
    /// once per basic block. Produces identical data at much higher
    /// overhead — this is the naive design the paper's per-block
    /// optimization replaces (Section III-C: "GT-Pin inserts counter
    /// increments only once per basic block rather than per
    /// instruction"). Only meaningful with `count_basic_blocks`.
    pub naive_per_instruction_counters: bool,
}

impl Default for RewriteConfig {
    fn default() -> RewriteConfig {
        RewriteConfig {
            count_basic_blocks: true,
            time_kernels: false,
            trace_memory: false,
            naive_per_instruction_counters: false,
        }
    }
}

/// One instrumented global-send site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendSite {
    /// Tag planted in the trace records for this site.
    pub tag: u32,
    /// Basic block containing the send.
    pub block: u32,
    /// Bytes the send moves per execution.
    pub bytes: u32,
    /// Whether the site writes (vs reads).
    pub is_write: bool,
}

/// Where a kernel's counters live in the trace buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RewriteLayout {
    /// First trace-buffer slot used by this kernel.
    pub slot_base: u32,
    /// One slot per basic block, starting at `slot_base`.
    pub num_block_slots: u32,
    /// Slot accumulating per-thread kernel cycles, if timing.
    pub timer_slot: Option<u32>,
    /// Instrumented send sites, if memory tracing.
    pub send_sites: Vec<SendSite>,
}

impl RewriteLayout {
    /// Slot of basic block `bb`.
    pub fn block_slot(&self, bb: usize) -> u32 {
        self.slot_base + bb as u32
    }

    /// Total slots consumed (the next kernel's base).
    pub fn slots_used(&self) -> u32 {
        self.num_block_slots + u32::from(self.timer_slot.is_some())
    }
}

/// The result of rewriting one kernel binary.
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The instrumented binary, ready for the GPU.
    pub bytes: Vec<u8>,
    /// Static tables of the *original* binary.
    pub static_info: StaticKernelInfo,
    /// Trace-buffer layout for post-processing.
    pub layout: RewriteLayout,
    /// Static instruction count after instrumentation.
    pub instrumented_instructions: u64,
}

/// Rewrite one encoded kernel binary.
///
/// `slot_base` is the first free trace-buffer slot; `tag_base` the
/// first free memory-trace tag.
///
/// # Errors
///
/// Returns a description when the binary cannot be decoded — the
/// driver surfaces it as a JIT failure.
pub fn rewrite_binary(
    bytes: &[u8],
    config: &RewriteConfig,
    slot_base: u32,
    tag_base: u32,
) -> Result<Rewritten, String> {
    let stream = decode_stream(bytes).map_err(|e| {
        gtpin_obs::warn!(
            "rewriter: undecodable kernel binary ({} bytes): {e}",
            bytes.len()
        );
        e.to_string()
    })?;
    let instrs = stream.instrs;
    let bb_starts = leaders(&instrs).map_err(|e| {
        gtpin_obs::warn!(
            "rewriter: control-flow analysis failed for `{}`: {e}",
            stream.name
        );
        e.to_string()
    })?;
    let static_info = StaticKernelInfo::analyse(&stream.name, &instrs, &bb_starts);

    let n = instrs.len();
    let mut insert_before: Vec<Vec<Instruction>> = vec![Vec::new(); n];
    let mut send_sites = Vec::new();

    if config.count_basic_blocks {
        if config.naive_per_instruction_counters {
            // Ablation: one counter bump in front of EVERY
            // instruction, attributed to its block's slot. Same
            // resulting profile, far more injected work.
            #[allow(clippy::needless_range_loop)]
            for i in 0..n {
                let first_of_block = bb_starts.binary_search(&(i as u32)).is_ok();
                // The block counter still counts *entries*: bump the
                // slot only at leaders, but pay a bump-sized cost at
                // every instruction (increment a scratch register and
                // flush it at leaders), modelled here as a full
                // counter sequence at leaders and a scratch increment
                // elsewhere.
                if first_of_block {
                    let slot = slot_base + block_of(&bb_starts, i)? as u32;
                    insert_before[i].extend(counter_sequence(slot));
                } else {
                    insert_before[i].extend(scratch_increment());
                }
            }
        } else {
            for (bb, &leader) in bb_starts.iter().enumerate() {
                let slot = slot_base + bb as u32;
                insert_before[leader as usize].extend(counter_sequence(slot));
            }
        }
    }

    let timer_slot = if config.time_kernels {
        let slot = slot_base + bb_starts.len() as u32;
        // Entry: capture the timer once, after any block counter.
        if n > 0 {
            insert_before[0].push(read_timer(R_T0));
        }
        // Before every eot: capture again, accumulate the delta.
        for (i, instr) in instrs.iter().enumerate() {
            if instr.opcode == Opcode::Eot {
                insert_before[i].extend(timer_exit_sequence(slot));
            }
        }
        Some(slot)
    } else {
        None
    };

    if config.trace_memory {
        for (i, instr) in instrs.iter().enumerate() {
            let Some(desc) = instr.send else { continue };
            if desc.surface != Surface::Global {
                continue;
            }
            let tag = tag_base + send_sites.len() as u32;
            let addr_reg = match instr.srcs[0] {
                Src::Reg(r) => r,
                _ => continue,
            };
            insert_before[i].extend(trace_send_sequence(tag, addr_reg));
            send_sites.push(SendSite {
                tag,
                block: block_of(&bb_starts, i)? as u32,
                bytes: desc.bytes,
                is_write: desc.op.is_write(),
            });
        }
    }

    // Positions of original instructions in the new stream.
    let mut pos = vec![0usize; n];
    let mut cursor = 0usize;
    for i in 0..n {
        cursor += insert_before[i].len();
        pos[i] = cursor;
        cursor += 1;
    }
    let total = cursor;

    // Emit, repairing branch displacements: control transfers land on
    // the first instruction *inserted before* their target, so block
    // counters observe entries via branches too.
    let mut out: Vec<Instruction> = Vec::with_capacity(total);
    for (i, instr) in instrs.iter().enumerate() {
        out.extend(insert_before[i].iter().copied());
        let mut instr = *instr;
        if instr.opcode.is_control() && !matches!(instr.opcode, Opcode::Eot | Opcode::Ret) {
            let old_target = usize::try_from(i as i64 + 1 + i64::from(instr.branch_offset))
                .map_err(|_| branch_error(&stream.name, i, instr.branch_offset))?;
            let target_pos = *pos
                .get(old_target)
                .ok_or_else(|| branch_error(&stream.name, i, instr.branch_offset))?;
            let new_target = target_pos
                .checked_sub(insert_before[old_target].len())
                .ok_or_else(|| branch_error(&stream.name, i, instr.branch_offset))?;
            instr.branch_offset = (new_target as i64 - (pos[i] as i64 + 1)) as i32;
        }
        out.push(instr);
    }
    debug_assert_eq!(out.len(), total);

    let mut metadata = stream.metadata;
    metadata.instrumented = true;
    let bytes = encode_stream(&stream.name, &metadata, &out);

    Ok(Rewritten {
        bytes,
        static_info,
        layout: RewriteLayout {
            slot_base,
            num_block_slots: bb_starts.len() as u32,
            timer_slot,
            send_sites,
        },
        instrumented_instructions: total as u64,
    })
}

/// Basic block containing instruction `i`, or an error when `i`
/// precedes the first leader — a malformed control-flow table that
/// previously underflowed a `b - 1` here and panicked mid-rewrite.
fn block_of(bb_starts: &[u32], i: usize) -> Result<usize, String> {
    match bb_starts.binary_search(&(i as u32)) {
        Ok(b) => Ok(b),
        Err(0) => Err(format!(
            "instruction {i} precedes the first basic-block leader"
        )),
        Err(b) => Ok(b - 1),
    }
}

/// A control transfer whose repaired target falls outside the
/// instruction stream — previously an out-of-bounds index panic.
fn branch_error(kernel: &str, i: usize, offset: i32) -> String {
    format!(
        "kernel `{kernel}`: branch at instruction {i} (offset {offset}) targets outside the stream"
    )
}

/// `mov r120, slot; mov r121, 1; send.atomic_add [r120] += r121`
fn counter_sequence(slot: u32) -> [Instruction; 3] {
    [
        mov_imm(R_SLOT, slot),
        mov_imm(R_ONE, 1),
        atomic_add(R_SLOT, R_ONE),
    ]
}

/// `timer r123; sub r124, r123, r122; mov r120, slot;
/// send.atomic_add [r120] += r124`
fn timer_exit_sequence(slot: u32) -> [Instruction; 4] {
    let mut sub = Instruction::new(Opcode::Sub, ExecSize::S1);
    sub.dst = Some(R_DELTA);
    sub.srcs = [Src::Reg(R_T1), Src::Reg(R_T0), Src::Null];
    [
        read_timer(R_T1),
        sub,
        mov_imm(R_SLOT, slot),
        atomic_add(R_SLOT, R_DELTA),
    ]
}

/// `mov r125, tag; send.write trace[tag] ← addr_reg`
fn trace_send_sequence(tag: u32, addr_reg: Reg) -> [Instruction; 2] {
    let mut w = Instruction::new(Opcode::Send, ExecSize::S1);
    w.srcs[0] = Src::Reg(R_TAG);
    w.srcs[1] = Src::Reg(addr_reg);
    w.send = Some(gen_isa::SendDescriptor {
        op: gen_isa::SendOp::Write,
        surface: Surface::TraceBuffer,
        bytes: 8,
    });
    [mov_imm(R_TAG, tag), w]
}

/// `add r121, r121, 1` — the naive ablation's per-instruction cost.
fn scratch_increment() -> [Instruction; 1] {
    let mut i = Instruction::new(Opcode::Add, ExecSize::S1);
    i.dst = Some(R_ONE);
    i.srcs = [Src::Reg(R_ONE), Src::Imm(1), Src::Null];
    [i]
}

fn mov_imm(dst: Reg, v: u32) -> Instruction {
    let mut i = Instruction::new(Opcode::Mov, ExecSize::S1);
    i.dst = Some(dst);
    i.srcs[0] = Src::Imm(v);
    i
}

fn atomic_add(addr: Reg, data: Reg) -> Instruction {
    let mut i = Instruction::new(Opcode::Send, ExecSize::S1);
    i.srcs[0] = Src::Reg(addr);
    i.srcs[1] = Src::Reg(data);
    i.send = Some(gen_isa::SendDescriptor {
        op: gen_isa::SendOp::AtomicAdd,
        surface: Surface::TraceBuffer,
        bytes: 4,
    });
    i
}

fn read_timer(dst: Reg) -> Instruction {
    let mut i = Instruction::new(Opcode::Send, ExecSize::S1);
    i.dst = Some(dst);
    i.send = Some(gen_isa::SendDescriptor {
        op: gen_isa::SendOp::ReadTimer,
        surface: Surface::Scratch,
        bytes: 8,
    });
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_device::driver::decode_flat;
    use gpu_device::{Cache, CacheConfig, ExecConfig, Executor, TraceBuffer};
    use ocl_runtime::api::ArgValue;
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};

    fn loop_kernel_bytes(trip: u32) -> Vec<u8> {
        let mut ir = KernelIr::new("loopy", 1);
        ir.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Const(trip),
            },
            IrOp::Compute {
                ops: 5,
                width: ExecSize::S16,
            },
            IrOp::Load {
                arg: 0,
                bytes: 64,
                width: ExecSize::S16,
                pattern: AccessPattern::Linear,
            },
            IrOp::LoopEnd,
        ];
        gpu_device::jit::compile_kernel(&ir).unwrap().encode()
    }

    fn execute(
        bytes: &[u8],
        args: &[ArgValue],
        gws: u64,
    ) -> (gpu_device::ExecutionStats, TraceBuffer) {
        let flat = decode_flat(bytes).unwrap();
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(&flat, args, gws)
        .unwrap();
        (stats, trace)
    }

    #[test]
    fn counters_match_native_block_execution() {
        let bytes = loop_kernel_bytes(7);
        let rw = rewrite_binary(&bytes, &RewriteConfig::default(), 0, 0).unwrap();
        let args = [ArgValue::Buffer(0)];
        let (_, trace) = execute(&rw.bytes, &args, 32); // 2 threads

        // The loop head block must have executed trip × threads times.
        let flat = decode_flat(&bytes).unwrap();
        let total_app: u64 = (0..rw.layout.num_block_slots)
            .map(|bb| {
                trace.slot(rw.layout.block_slot(bb as usize) as usize)
                    * rw.static_info.blocks[bb as usize].instructions
            })
            .sum();
        // Reconstructed app instruction count equals a native run of
        // the ORIGINAL binary.
        let (native, _) = execute(&bytes, &args, 32);
        assert_eq!(
            total_app, native.instructions,
            "per-BB counters reconstruct instr counts"
        );
        assert!(flat.num_blocks() >= 3);
    }

    #[test]
    fn instrumentation_does_not_perturb_app_memory_traffic() {
        let bytes = loop_kernel_bytes(5);
        let rw = rewrite_binary(
            &bytes,
            &RewriteConfig {
                count_basic_blocks: true,
                time_kernels: true,
                trace_memory: true,
                naive_per_instruction_counters: false,
            },
            0,
            0,
        )
        .unwrap();
        let args = [ArgValue::Buffer(0)];
        let (orig, _) = execute(&bytes, &args, 64);
        let (inst, _) = execute(&rw.bytes, &args, 64);
        assert_eq!(inst.bytes_read, orig.bytes_read);
        assert_eq!(inst.bytes_written, orig.bytes_written);
        assert_eq!(inst.global_sends, orig.global_sends);
        assert!(
            inst.instructions > orig.instructions,
            "instrumentation adds work"
        );
    }

    #[test]
    fn timer_slot_accumulates_positive_cycles() {
        let bytes = loop_kernel_bytes(5);
        let cfg = RewriteConfig {
            count_basic_blocks: false,
            time_kernels: true,
            trace_memory: false,
            naive_per_instruction_counters: false,
        };
        let rw = rewrite_binary(&bytes, &cfg, 10, 0).unwrap();
        let slot = rw.layout.timer_slot.unwrap();
        let (_, trace) = execute(&rw.bytes, &[ArgValue::Buffer(0)], 48);
        assert!(
            trace.slot(slot as usize) > 0,
            "three threads accumulated cycles"
        );
    }

    #[test]
    fn memory_trace_records_every_global_send() {
        let bytes = loop_kernel_bytes(4);
        let cfg = RewriteConfig {
            count_basic_blocks: false,
            time_kernels: false,
            trace_memory: true,
            naive_per_instruction_counters: false,
        };
        let rw = rewrite_binary(&bytes, &cfg, 0, 100).unwrap();
        assert_eq!(rw.layout.send_sites.len(), 1);
        assert_eq!(rw.layout.send_sites[0].tag, 100);
        let (stats, trace) = execute(&rw.bytes, &[ArgValue::Buffer(0)], 16);
        assert_eq!(trace.records().len() as u64, stats.global_sends);
        assert!(trace.records().iter().all(|r| r.tag == 100));
    }

    #[test]
    fn rewritten_binary_is_marked_instrumented() {
        let bytes = loop_kernel_bytes(2);
        let rw = rewrite_binary(&bytes, &RewriteConfig::default(), 0, 0).unwrap();
        let flat = decode_flat(&rw.bytes).unwrap();
        assert!(flat.metadata.instrumented);
        assert!(rw.instrumented_instructions > rw.static_info.static_instructions);
    }

    #[test]
    fn disabled_config_is_identity_up_to_metadata() {
        let bytes = loop_kernel_bytes(2);
        let cfg = RewriteConfig {
            count_basic_blocks: false,
            time_kernels: false,
            trace_memory: false,
            naive_per_instruction_counters: false,
        };
        let rw = rewrite_binary(&bytes, &cfg, 0, 0).unwrap();
        assert_eq!(
            rw.instrumented_instructions,
            rw.static_info.static_instructions
        );
        let orig = decode_flat(&bytes).unwrap();
        let new = decode_flat(&rw.bytes).unwrap();
        assert_eq!(orig.instrs, new.instrs);
    }

    #[test]
    fn garbage_bytes_rejected() {
        assert!(rewrite_binary(b"not a kernel", &RewriteConfig::default(), 0, 0).is_err());
    }

    #[test]
    fn naive_per_instruction_counting_same_data_more_cost() {
        let bytes = loop_kernel_bytes(6);
        let args = [ArgValue::Buffer(0)];
        let per_block = rewrite_binary(&bytes, &RewriteConfig::default(), 0, 0).unwrap();
        let naive = rewrite_binary(
            &bytes,
            &RewriteConfig {
                naive_per_instruction_counters: true,
                ..RewriteConfig::default()
            },
            0,
            0,
        )
        .unwrap();
        assert!(
            naive.instrumented_instructions > per_block.instrumented_instructions,
            "naive instrumentation is strictly bigger"
        );

        // Identical block counters observed either way.
        let (_, trace_block) = execute(&per_block.bytes, &args, 48);
        let (stats_naive, trace_naive) = execute(&naive.bytes, &args, 48);
        for bb in 0..per_block.layout.num_block_slots {
            assert_eq!(
                trace_block.slot(per_block.layout.block_slot(bb as usize) as usize),
                trace_naive.slot(naive.layout.block_slot(bb as usize) as usize),
                "block {bb} counts identical under both designs"
            );
        }
        // But the naive design executed far more injected work.
        let (stats_block, _) = execute(&per_block.bytes, &args, 48);
        assert!(stats_naive.instructions > stats_block.instructions);
    }
}
