//! Static analysis of kernel binaries, performed by GT-Pin at
//! rewrite time.
//!
//! GT-Pin deliberately inserts as little dynamic work as possible:
//! one counter increment per basic block rather than per instruction
//! (Section III-C). Everything else — dynamic instruction counts,
//! opcode mixes, SIMD-width histograms, memory bytes — is recovered
//! by multiplying the dynamic block counts against the static
//! per-block tables computed here.

use gen_isa::{Instruction, Surface};
use serde::{Deserialize, Serialize};

/// Static facts about one basic block of the *original*
/// (uninstrumented) kernel binary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockStaticInfo {
    /// Instructions in the block (including its control-flow tail).
    pub instructions: u64,
    /// Instructions per opcode category, indexed per
    /// [`gen_isa::OpcodeCategory::ALL`].
    pub per_category: [u64; 5],
    /// Instructions per SIMD width, indexed per
    /// [`gen_isa::ExecSize::ALL`].
    pub per_width: [u64; 5],
    /// Application bytes read from global memory by one execution of
    /// the block.
    pub bytes_read: u64,
    /// Application bytes written by one execution.
    pub bytes_written: u64,
    /// Global send sites in the block.
    pub global_sends: u64,
}

/// Static facts about one kernel, as GT-Pin saw it before
/// instrumentation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticKernelInfo {
    /// Kernel name from the binary header.
    pub name: String,
    /// Per-block tables; index = basic-block index.
    pub blocks: Vec<BlockStaticInfo>,
    /// Static instruction count of the original binary.
    pub static_instructions: u64,
}

impl StaticKernelInfo {
    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Analyse a decoded instruction stream with known block leaders.
    pub fn analyse(name: &str, instrs: &[Instruction], bb_starts: &[u32]) -> StaticKernelInfo {
        let mut blocks = Vec::with_capacity(bb_starts.len());
        for (b, &start) in bb_starts.iter().enumerate() {
            let end = bb_starts
                .get(b + 1)
                .map(|&s| s as usize)
                .unwrap_or(instrs.len());
            let mut info = BlockStaticInfo::default();
            for instr in &instrs[start as usize..end] {
                info.instructions += 1;
                info.per_category[instr.opcode.category().index()] += 1;
                info.per_width[instr.exec_size.index()] += 1;
                info.bytes_read += instr.app_bytes_read();
                info.bytes_written += instr.app_bytes_written();
                if instr.opcode.is_send()
                    && instr
                        .send
                        .map(|d| d.surface == Surface::Global)
                        .unwrap_or(false)
                {
                    info.global_sends += 1;
                }
            }
            blocks.push(info);
        }
        StaticKernelInfo {
            name: name.to_string(),
            static_instructions: instrs.len() as u64,
            blocks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{ExecSize, Reg, Src};

    #[test]
    fn analysis_matches_hand_counts() {
        let mut b = KernelBuilder::new("k");
        let e = b.entry_block();
        b.block_mut(e)
            .mov(ExecSize::S8, Reg(1), Src::Imm(0))
            .add(ExecSize::S16, Reg(2), Src::Reg(Reg(1)), Src::Imm(1))
            .send_read(ExecSize::S16, Reg(3), Reg(2), gen_isa::Surface::Global, 128)
            .eot();
        let flat = b.build().unwrap().flatten();
        let info = StaticKernelInfo::analyse("k", &flat.instrs, &flat.bb_starts);
        assert_eq!(info.num_blocks(), 1);
        assert_eq!(info.static_instructions, 4);
        let blk = &info.blocks[0];
        assert_eq!(blk.instructions, 4);
        assert_eq!(blk.bytes_read, 128);
        assert_eq!(blk.bytes_written, 0);
        assert_eq!(blk.global_sends, 1);
        // mov:Move, add:Computation, send:Send, eot:Control
        assert_eq!(blk.per_category, [1, 0, 1, 1, 1]);
    }

    #[test]
    fn per_block_attribution() {
        let mut b = KernelBuilder::new("k");
        let e = b.entry_block();
        let x = b.new_block();
        b.block_mut(e).mov(ExecSize::S8, Reg(1), Src::Imm(0));
        b.block_mut(x)
            .send_write(ExecSize::S8, Reg(1), Reg(2), gen_isa::Surface::Global, 64)
            .eot();
        let flat = b.build().unwrap().flatten();
        let info = StaticKernelInfo::analyse("k", &flat.instrs, &flat.bb_starts);
        assert_eq!(info.num_blocks(), 2);
        assert_eq!(info.blocks[0].bytes_written, 0);
        assert_eq!(info.blocks[1].bytes_written, 64);
    }
}
