//! Per-application characterization summaries — the rows of
//! Figures 3 and 4 in the paper.

use gen_isa::{ExecSize, OpcodeCategory};
use ocl_runtime::api::ApiCallKind;
use ocl_runtime::cofluent::CofluentReport;
use serde::{Deserialize, Serialize};

use crate::profile::ProgramProfile;

/// One application's characterization: the combination of CoFluent
/// API-call data (host side) and GT-Pin profile data (device side).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AppCharacterization {
    /// Application name.
    pub app: String,
    /// Total OpenCL API calls (Figure 3a denominator).
    pub total_api_calls: u64,
    /// Fraction of API calls that are kernel invocations.
    pub kernel_call_fraction: f64,
    /// Fraction that are synchronization calls.
    pub sync_call_fraction: f64,
    /// Fraction that are other calls.
    pub other_call_fraction: f64,
    /// Unique kernels (Figure 3b).
    pub unique_kernels: usize,
    /// Unique static basic blocks (Figure 3b).
    pub unique_basic_blocks: usize,
    /// Kernel invocations (Figure 3c).
    pub kernel_invocations: usize,
    /// Dynamic basic-block executions (Figure 3c).
    pub bb_executions: u64,
    /// Dynamic instructions (Figure 3c).
    pub instructions: u64,
    /// Instruction-mix fractions, indexed per
    /// [`OpcodeCategory::ALL`] (Figure 4a).
    pub category_fractions: [f64; 5],
    /// SIMD-width fractions, indexed per [`ExecSize::ALL`]
    /// (Figure 4b).
    pub width_fractions: [f64; 5],
    /// Bytes read (Figure 4c).
    pub bytes_read: u64,
    /// Bytes written (Figure 4c).
    pub bytes_written: u64,
    /// Estimated dynamic instruction overhead of the instrumentation
    /// (Section III's 2–10× framing), from the profile's block
    /// execution counts.
    pub dynamic_overhead_factor: f64,
    /// Measured issue-cycle overhead ratio from the device's native
    /// counters ([`gpu_device::stats::ExecutionStats::overhead_ratio`]),
    /// when the caller supplies launch stats via
    /// [`AppCharacterization::with_measured_overhead`].
    pub measured_overhead_ratio: Option<f64>,
}

impl AppCharacterization {
    /// Combine a CoFluent report and a GT-Pin profile for one app.
    pub fn new(cofluent: &CofluentReport, profile: &ProgramProfile) -> AppCharacterization {
        let mut category_fractions = [0.0; 5];
        for (i, &c) in OpcodeCategory::ALL.iter().enumerate() {
            category_fractions[i] = profile.category_fraction(c);
        }
        let mut width_fractions = [0.0; 5];
        for (i, &w) in ExecSize::ALL.iter().enumerate() {
            width_fractions[i] = profile.width_fraction(w);
        }
        AppCharacterization {
            app: cofluent.app.clone(),
            total_api_calls: cofluent.total_api_calls,
            kernel_call_fraction: cofluent.kind_fraction(ApiCallKind::Kernel),
            sync_call_fraction: cofluent.kind_fraction(ApiCallKind::Synchronization),
            other_call_fraction: cofluent.kind_fraction(ApiCallKind::Other),
            unique_kernels: profile.unique_kernels(),
            unique_basic_blocks: profile.unique_basic_blocks(),
            kernel_invocations: profile.num_invocations(),
            bb_executions: profile.total_bb_executions(),
            instructions: profile.total_instructions(),
            category_fractions,
            width_fractions,
            bytes_read: profile.total_bytes_read(),
            bytes_written: profile.total_bytes_written(),
            dynamic_overhead_factor: profile.dynamic_overhead_factor(),
            measured_overhead_ratio: None,
        }
    }

    /// Attach the measured issue-cycle overhead ratio from aggregated
    /// launch counters (instrumented vs. native issue+trace cycles).
    pub fn with_measured_overhead(
        mut self,
        stats: &gpu_device::stats::ExecutionStats,
    ) -> AppCharacterization {
        self.measured_overhead_ratio = Some(stats.overhead_ratio());
        self
    }

    /// Fraction for one category.
    pub fn category_fraction(&self, category: OpcodeCategory) -> f64 {
        let i = OpcodeCategory::ALL
            .iter()
            .position(|&c| c == category)
            .expect("category in ALL");
        self.category_fractions[i]
    }

    /// Fraction for one SIMD width.
    pub fn width_fraction(&self, width: ExecSize) -> f64 {
        let i = ExecSize::ALL
            .iter()
            .position(|&w| w == width)
            .expect("width in ALL");
        self.width_fractions[i]
    }
}

impl std::fmt::Display for AppCharacterization {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "app {}", self.app)?;
        writeln!(
            f,
            "  api calls: {} (kernel {:.1}%, sync {:.1}%, other {:.1}%)",
            self.total_api_calls,
            self.kernel_call_fraction * 100.0,
            self.sync_call_fraction * 100.0,
            self.other_call_fraction * 100.0
        )?;
        writeln!(
            f,
            "  structure: {} kernels, {} basic blocks",
            self.unique_kernels, self.unique_basic_blocks
        )?;
        writeln!(
            f,
            "  dynamic:   {} invocations, {} bb execs, {} instructions",
            self.kernel_invocations, self.bb_executions, self.instructions
        )?;
        writeln!(
            f,
            "  memory:    {} B read, {} B written",
            self.bytes_read, self.bytes_written
        )?;
        write!(
            f,
            "  overhead:  {:.2}x dynamic instructions",
            self.dynamic_overhead_factor
        )?;
        if let Some(ratio) = self.measured_overhead_ratio {
            write!(f, ", {ratio:.2}x issue cycles (measured)")?;
        }
        Ok(())
    }
}
