//! The GT-Pin engine: ties the binary rewriter, the trace-buffer
//! post-processing, and user tools together, and attaches to a GPU
//! exactly where Figure 1 of the paper modifies the stack.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gpu_device::driver::BinaryRewriter;
use gpu_device::gpu::{Gpu, LaunchInfo, LaunchObserver};
use gpu_device::memory::TraceBuffer;

use crate::profile::{InvocationProfile, KernelOverhead, ProgramProfile};
use crate::rewriter::{rewrite_binary, RewriteConfig, RewriteLayout, SendSite};
use crate::static_info::StaticKernelInfo;
use crate::tool::{Tool, ToolContext};

struct KernelRecord {
    static_info: StaticKernelInfo,
    layout: RewriteLayout,
    overhead: KernelOverhead,
}

struct Engine {
    config: RewriteConfig,
    kernels: Vec<KernelRecord>,
    invocations: Vec<InvocationProfile>,
    next_slot: u32,
    next_tag: u32,
    site_table: HashMap<u32, SendSite>,
    tools: Vec<Rc<RefCell<dyn Tool>>>,
    /// Run the instrumentation-safety verifier over every rewrite
    /// (the `GTPIN_VERIFY=1` gate).
    verify: bool,
}

impl Engine {
    fn rewrite(&mut self, kernel_index: usize, binary: &[u8]) -> Result<Vec<u8>, String> {
        if kernel_index == 0 {
            // A fresh clBuildProgram: start a new layout epoch.
            self.kernels.clear();
            self.site_table.clear();
            self.next_slot = 0;
            self.next_tag = 0;
        }
        if kernel_index != self.kernels.len() {
            gtpin_obs::warn!(
                "kernel {kernel_index} rewritten out of order (have {})",
                self.kernels.len()
            );
            return Err(format!(
                "kernel {kernel_index} rewritten out of order (have {})",
                self.kernels.len()
            ));
        }
        let mut span = gtpin_obs::span("engine.rewrite");
        span.arg_u64("kernel_index", kernel_index as u64);
        let rw = rewrite_binary(binary, &self.config, self.next_slot, self.next_tag)?;
        if self.verify {
            match gtpin_analyze::verify_rewrite(binary, &rw.bytes) {
                Ok(report) => {
                    gtpin_obs::counter_add("engine.rewrites_verified", 1);
                    if span.active() {
                        span.arg_u64("verified_probes", report.probes as u64);
                    }
                }
                Err(e) => {
                    gtpin_obs::warn!("rewrite verification failed: {e}");
                    gtpin_obs::counter_add("engine.rewrites_verify_failed", 1);
                    return Err(format!("rewrite verification failed: {e}"));
                }
            }
        }
        if span.active() {
            span.arg_u64("static_instructions", rw.static_info.static_instructions);
            span.arg_u64("instrumented_instructions", rw.instrumented_instructions);
            span.arg_u64("send_sites", rw.layout.send_sites.len() as u64);
        }
        self.next_slot += rw.layout.slots_used();
        self.next_tag += rw.layout.send_sites.len() as u32;
        for site in &rw.layout.send_sites {
            self.site_table.insert(site.tag, *site);
        }
        for tool in &self.tools {
            tool.borrow_mut()
                .on_kernel_build(kernel_index, &rw.static_info);
        }
        self.kernels.push(KernelRecord {
            overhead: KernelOverhead {
                original_static: rw.static_info.static_instructions,
                instrumented_static: rw.instrumented_instructions,
            },
            static_info: rw.static_info,
            layout: rw.layout,
        });
        Ok(rw.bytes)
    }

    fn post_process(&mut self, info: &LaunchInfo, trace: &mut TraceBuffer) {
        let Some(record) = self.kernels.get(info.kernel.index()) else {
            gtpin_obs::warn!(
                "launch {} references kernel {} with no rewrite record; skipping post-process",
                info.launch_index,
                info.kernel.index()
            );
            return;
        };
        let mut span = gtpin_obs::span("engine.post_process");
        if span.active() {
            span.arg_u64("launch_index", info.launch_index as u64);
            span.arg_str("kernel", info.kernel_name.clone());
            // The paper's headline self-measurement: how much slower
            // this launch ran because of injected trace traffic.
            let ratio = info.stats.overhead_ratio();
            span.arg_f64("overhead_ratio", ratio);
            span.arg_u64("trace_bytes", info.stats.trace_bytes);
            gtpin_obs::counter_add("engine.launches", 1);
            gtpin_obs::hist_ns("engine.overhead_ratio_pct", (ratio * 100.0) as u64);
            gtpin_obs::gauge_set("engine.overhead_ratio", ratio);
        }
        let layout = &record.layout;
        let st = &record.static_info;

        let mut bb_counts = vec![0u64; st.num_blocks()];
        if self.config.count_basic_blocks {
            for (bb, count) in bb_counts.iter_mut().enumerate() {
                *count = trace.slot(layout.block_slot(bb) as usize);
            }
        }

        let mut instructions = 0u64;
        let mut per_category = [0u64; 5];
        let mut per_width = [0u64; 5];
        let mut bytes_read = 0u64;
        let mut bytes_written = 0u64;
        for (bb, &count) in bb_counts.iter().enumerate() {
            let blk = &st.blocks[bb];
            instructions += count * blk.instructions;
            for c in 0..5 {
                per_category[c] += count * blk.per_category[c];
                per_width[c] += count * blk.per_width[c];
            }
            bytes_read += count * blk.bytes_read;
            bytes_written += count * blk.bytes_written;
        }

        let thread_cycles = layout.timer_slot.map(|slot| trace.slot(slot as usize));

        let mem_trace: Vec<(u32, u64)> = if self.config.trace_memory {
            trace.records().iter().map(|r| (r.tag, r.value)).collect()
        } else {
            Vec::new()
        };

        let profile = InvocationProfile {
            launch_index: info.launch_index,
            kernel_index: info.kernel.0,
            kernel_name: info.kernel_name.clone(),
            global_work_size: info.global_work_size,
            args_digest: args_digest(&info.args),
            bb_counts,
            instructions,
            per_category,
            per_width,
            bytes_read,
            bytes_written,
            thread_cycles,
            mem_trace,
            dropped_records: info.stats.trace_dropped,
            quarantined_records: info.stats.trace_quarantined,
        };

        let kernels: Vec<&StaticKernelInfo> = self.kernels.iter().map(|k| &k.static_info).collect();
        let ctx = ToolContext {
            kernels: &kernels,
            send_sites: &self.site_table,
        };
        for tool in &self.tools {
            tool.borrow_mut().on_kernel_complete(&profile, &ctx);
        }
        self.invocations.push(profile);
    }

    fn snapshot(&self, app: &str) -> ProgramProfile {
        ProgramProfile {
            app: app.to_string(),
            kernels: self.kernels.iter().map(|k| k.static_info.clone()).collect(),
            overheads: self.kernels.iter().map(|k| k.overhead).collect(),
            invocations: self.invocations.clone(),
        }
    }
}

fn args_digest(args: &[ocl_runtime::api::ArgValue]) -> u64 {
    args.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, a| {
        (h ^ a.digest()).wrapping_mul(0x0000_0100_0000_01B3)
    })
}

/// The user-facing GT-Pin handle.
///
/// Construct one, [`attach`](GtPin::attach) it to a [`Gpu`], run the
/// program through the OpenCL runtime, then read the
/// [`ProgramProfile`].
///
/// # Example
///
/// ```
/// use gtpin_core::{GtPin, RewriteConfig};
/// use gpu_device::{Gpu, GpuConfig};
///
/// let mut gpu = Gpu::new(GpuConfig::hd4000());
/// let gtpin = GtPin::new(RewriteConfig::default());
/// gtpin.attach(&mut gpu);
/// // ... run a HostProgram through OclRuntime::new(gpu) ...
/// ```
pub struct GtPin {
    state: Rc<RefCell<Engine>>,
}

impl std::fmt::Debug for GtPin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("GtPin")
            .field("kernels", &s.kernels.len())
            .field("invocations", &s.invocations.len())
            .finish()
    }
}

impl GtPin {
    /// A GT-Pin instance with the given instrumentation configuration.
    ///
    /// When the `GTPIN_VERIFY` environment variable is set (to
    /// anything but `0` or the empty string), every rewrite is
    /// checked by the [`gtpin_analyze`] instrumentation-safety
    /// verifier, and failures abort the build like a JIT error.
    pub fn new(config: RewriteConfig) -> GtPin {
        let verify = std::env::var("GTPIN_VERIFY")
            .map(|v| v != "0" && !v.is_empty())
            .unwrap_or(false);
        GtPin {
            state: Rc::new(RefCell::new(Engine {
                config,
                kernels: Vec::new(),
                invocations: Vec::new(),
                next_slot: 0,
                next_tag: 0,
                site_table: HashMap::new(),
                tools: Vec::new(),
                verify,
            })),
        }
    }

    /// Enable or disable rewrite verification programmatically,
    /// overriding whatever `GTPIN_VERIFY` said at construction.
    pub fn set_verify_rewrites(&self, verify: bool) {
        self.state.borrow_mut().verify = verify;
    }

    /// Whether rewrites are being verified.
    pub fn verify_rewrites(&self) -> bool {
        self.state.borrow().verify
    }

    /// Register a custom analysis tool. The tool is called at every
    /// kernel build and after every kernel invocation; keep a clone
    /// of the `Rc` to inspect it afterwards.
    pub fn add_tool(&self, tool: Rc<RefCell<dyn Tool>>) {
        self.state.borrow_mut().tools.push(tool);
    }

    /// Attach to a GPU: installs the binary rewriter on the driver
    /// and the trace-buffer post-processor on the launch path.
    pub fn attach(&self, gpu: &mut Gpu) {
        gpu.set_rewriter(Box::new(RewriterAdapter {
            state: self.state.clone(),
        }));
        gpu.set_observer(Box::new(ObserverAdapter {
            state: self.state.clone(),
        }));
    }

    /// Snapshot the profile collected so far.
    pub fn profile(&self, app: &str) -> ProgramProfile {
        self.state.borrow().snapshot(app)
    }

    /// Number of invocations observed so far.
    pub fn num_invocations(&self) -> usize {
        self.state.borrow().invocations.len()
    }
}

struct RewriterAdapter {
    state: Rc<RefCell<Engine>>,
}

impl BinaryRewriter for RewriterAdapter {
    fn rewrite(&mut self, kernel_index: usize, binary: &[u8]) -> Result<Vec<u8>, String> {
        self.state.borrow_mut().rewrite(kernel_index, binary)
    }
}

struct ObserverAdapter {
    state: Rc<RefCell<Engine>>,
}

impl LaunchObserver for ObserverAdapter {
    fn on_kernel_complete(&mut self, info: &LaunchInfo, trace: &mut TraceBuffer) {
        self.state.borrow_mut().post_process(info, trace);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::ExecSize;
    use gpu_device::GpuConfig;
    use ocl_runtime::api::{ArgValue, KernelId, SyncCall};
    use ocl_runtime::host::{HostScriptBuilder, ProgramSource};
    use ocl_runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
    use ocl_runtime::runtime::{OclRuntime, Schedule};

    fn program() -> ocl_runtime::host::HostProgram {
        let mut k = KernelIr::new("stream", 2);
        k.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Compute {
                ops: 6,
                width: ExecSize::S16,
            },
            IrOp::Load {
                arg: 1,
                bytes: 64,
                width: ExecSize::S16,
                pattern: AccessPattern::Linear,
            },
            IrOp::LoopEnd,
        ];
        let mut k2 = KernelIr::new("post", 0);
        k2.body = vec![IrOp::Move {
            ops: 12,
            width: ExecSize::S8,
        }];
        let source = ProgramSource {
            kernels: vec![k, k2],
        };
        let mut b = HostScriptBuilder::new("app", source);
        for i in 1..=3u64 {
            b.set_arg(KernelId(0), 0, ArgValue::Scalar(4 * i));
            b.set_arg(KernelId(0), 1, ArgValue::Buffer(0));
            b.launch(KernelId(0), 64);
        }
        b.launch(KernelId(1), 32);
        b.sync(SyncCall::Finish);
        b.finish().unwrap()
    }

    fn profiled_run() -> (ProgramProfile, gpu_device::Gpu) {
        let mut gpu = Gpu::new(GpuConfig::hd4000());
        let gtpin = GtPin::new(RewriteConfig::default());
        gtpin.attach(&mut gpu);
        let mut rt = OclRuntime::new(gpu);
        rt.run(&program(), Schedule::Replay).unwrap();
        (gtpin.profile("app"), rt.into_device())
    }

    #[test]
    fn profile_reconstructs_app_instruction_counts() {
        let (profile, gpu) = profiled_run();
        assert_eq!(profile.num_invocations(), 4);
        assert_eq!(profile.unique_kernels(), 2);

        // Ground truth: run the same program uninstrumented and
        // compare native counters.
        let mut clean = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
        clean.run(&program(), Schedule::Replay).unwrap();
        let native = clean.into_device();
        for (inv, launch) in profile.invocations.iter().zip(native.launches()) {
            assert_eq!(
                inv.instructions, launch.stats.instructions,
                "GT-Pin reconstruction equals native count for launch {}",
                inv.launch_index
            );
            assert_eq!(inv.bytes_read, launch.stats.bytes_read);
            assert_eq!(inv.bytes_written, launch.stats.bytes_written);
            assert_eq!(inv.per_category, launch.stats.per_category);
            assert_eq!(inv.per_width, launch.stats.per_width);
        }
        // The instrumented run itself executed MORE than the app.
        let instrumented_total: u64 = gpu.launches().iter().map(|l| l.stats.instructions).sum();
        assert!(instrumented_total > profile.total_instructions());
    }

    #[test]
    fn overhead_factor_is_within_the_papers_band() {
        let (profile, gpu) = profiled_run();
        let app = profile.total_instructions() as f64;
        let instrumented: u64 = gpu.launches().iter().map(|l| l.stats.instructions).sum();
        let factor = instrumented as f64 / app;
        assert!(
            factor > 1.0 && factor < 10.0,
            "dynamic overhead {factor:.2}× should sit in the paper's 2–10× band (shape)"
        );
        assert!((profile.dynamic_overhead_factor() - factor).abs() / factor < 0.25);
    }

    #[test]
    fn launches_with_bigger_args_count_more_instructions() {
        let (profile, _) = profiled_run();
        assert!(profile.invocations[2].instructions > profile.invocations[0].instructions);
    }

    #[test]
    fn args_digest_distinguishes_launches() {
        let (profile, _) = profiled_run();
        assert_ne!(
            profile.invocations[0].args_digest,
            profile.invocations[1].args_digest
        );
    }

    #[test]
    fn verified_run_profiles_identically() {
        let mut gpu = Gpu::new(GpuConfig::hd4000());
        let gtpin = GtPin::new(RewriteConfig {
            count_basic_blocks: true,
            time_kernels: true,
            trace_memory: true,
            naive_per_instruction_counters: false,
        });
        gtpin.set_verify_rewrites(true);
        assert!(gtpin.verify_rewrites());
        gtpin.attach(&mut gpu);
        let mut rt = OclRuntime::new(gpu);
        rt.run(&program(), Schedule::Replay).unwrap();
        let profile = gtpin.profile("app");
        assert_eq!(
            profile.num_invocations(),
            4,
            "verifier accepted every rewrite"
        );
    }

    #[test]
    fn rebuild_resets_layout() {
        let mut gpu = Gpu::new(GpuConfig::hd4000());
        let gtpin = GtPin::new(RewriteConfig::default());
        gtpin.attach(&mut gpu);
        let mut rt = OclRuntime::new(gpu);
        rt.run(&program(), Schedule::Replay).unwrap();
        rt.run(&program(), Schedule::Replay).unwrap();
        let profile = gtpin.profile("app");
        assert_eq!(
            profile.unique_kernels(),
            2,
            "second build replaced, not appended"
        );
        assert_eq!(
            profile.num_invocations(),
            8,
            "invocations accumulate across runs"
        );
    }
}
