//! # gtpin-core
//!
//! GT-Pin: dynamic binary instrumentation for GPU kernels — the
//! primary contribution of *Fast Computational GPU Design with
//! GT-Pin* (IISWC 2015), reproduced over a synthetic GEN device
//! model.
//!
//! The tool follows Figure 1 of the paper:
//!
//! 1. it attaches to the GPU driver so every JIT-compiled kernel
//!    binary is diverted through the [`rewriter`] (which splices real
//!    counter/timer/trace instructions into the encoded bytes and
//!    repairs branch offsets),
//! 2. the injected instructions execute natively on the device and
//!    write a CPU/GPU-shared trace buffer, and
//! 3. after each kernel completes, the [`engine`] post-processes the
//!    trace buffer into [`profile::InvocationProfile`]s: dynamic
//!    basic-block counts, reconstructed instruction counts, opcode
//!    mixes, SIMD widths, memory bytes, kernel cycles, and address
//!    traces.
//!
//! Custom analyses plug in through the [`tool::Tool`] API
//! (Section III-B of the paper); stock tools live in [`tools`].
//!
//! # Example
//!
//! ```
//! use gtpin_core::{GtPin, RewriteConfig};
//! use gpu_device::{Gpu, GpuConfig};
//!
//! let mut gpu = Gpu::new(GpuConfig::hd4000());
//! let gtpin = GtPin::new(RewriteConfig::default());
//! gtpin.attach(&mut gpu);
//! // run host programs through ocl_runtime::OclRuntime::new(gpu),
//! // then inspect gtpin.profile("my-app").
//! ```

pub mod engine;
pub mod profile;
pub mod report;
pub mod rewriter;
pub mod static_info;
pub mod tool;
pub mod tools;

pub use engine::GtPin;
pub use profile::{InvocationProfile, KernelOverhead, ProgramProfile};
pub use report::AppCharacterization;
pub use rewriter::{RewriteConfig, RewriteLayout, SendSite};
pub use static_info::{BlockStaticInfo, StaticKernelInfo};
pub use tool::{Tool, ToolContext};
