//! Deterministic fault injection for the GT-Pin reproduction.
//!
//! Profiling shares a trace buffer with the workload, JIT builds can
//! fail, kernels can hang, and fan-out workers can die — the
//! characterization must survive all of it and account honestly for
//! what was lost. This crate is the switchboard: a process-wide
//! registry of **named injection points** whose fire/no-fire
//! decisions are a pure function of `(plan seed, site, caller key)`,
//! so a trial replays bit-identically no matter how many worker
//! threads ask, and in what order.
//!
//! Design discipline matches `gtpin-obs`:
//!
//! - **Off by default, zero-cost when off.** With `GTPIN_FAULTS`
//!   unset every instrumented seam costs one relaxed atomic load and
//!   a never-taken branch.
//! - **Deterministic when on.** Decisions never consult wall clocks,
//!   thread ids, or global call order. Each caller supplies a stable
//!   `key` (hardware-thread id, launch index, kernel-name hash, task
//!   index) and the registry hashes `(seed, site, key)` through a
//!   seeded RNG — one draw per decision, no shared stream to race on.
//! - **Recovery is accounted, not silent.** Every injection and every
//!   recovery step bumps a named counter; `summary()` renders the
//!   degradation report the CLI prints.
//!
//! Environment contract (`GTPIN_FAULTS`):
//!
//! - unset / `0` / `false` / `off` / `no` — disabled entirely.
//! - `1` / `true` / `yes` / `on` — *armed but quiescent*: every
//!   instrumented path runs its fault-aware branch, but all rates are
//!   zero so behaviour is bit-identical to a no-faults build. This is
//!   what the CI smoke exercises.
//! - anything else — a comma-separated spec: `seed=N`, `all=RATE`,
//!   or `<site>=RATE` (e.g. `GTPIN_FAULTS=seed=7,jit.build_fail=0.4`).
//!
//! `GTPIN_FAULTS_SEED` overrides the seed for the `1`-style forms.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

pub mod sealed;
pub use sealed::Sealed;

/// Environment variable that arms the registry.
pub const FAULTS_ENV: &str = "GTPIN_FAULTS";
/// Environment variable that overrides the seed for `GTPIN_FAULTS=1`.
pub const FAULTS_SEED_ENV: &str = "GTPIN_FAULTS_SEED";
/// Seed used when none is given; arbitrary but fixed forever.
pub const DEFAULT_SEED: u64 = 0xF417;

/// Panic payload used by injected worker panics (`panic_any` with
/// this exact `&'static str`). The process panic hook swallows these
/// so recovered injections don't spray backtraces; every other panic
/// reports normally.
pub const INJECTED_PANIC_MARKER: &str = "gtpin-faults: injected worker panic";

fn quiet_injected_panics() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| *s == INJECTED_PANIC_MARKER)
            {
                return;
            }
            prev(info);
        }));
    });
}

/// Canonical injection-point names. Callers pass these to
/// [`should_inject`]; specs in `GTPIN_FAULTS` refer to them by the
/// same strings.
pub mod site {
    /// Per-hardware-thread trace shard overflows early (recovered by
    /// early drain into the spill area — no records lost).
    pub const SHARD_OVERFLOW: &str = "trace.shard_overflow";
    /// A trace record is corrupted in flight (recovered by checksum
    /// quarantine before the observer sees the stream).
    pub const RECORD_CORRUPT: &str = "trace.record_corrupt";
    /// JIT kernel build fails transiently (recovered by bounded
    /// retry in the driver).
    pub const JIT_FAIL: &str = "jit.build_fail";
    /// A kernel launch hangs past the watchdog (recovered by retry
    /// with deterministic virtual-clock backoff).
    pub const LAUNCH_HANG: &str = "driver.launch_hang";
    /// A fan-out worker task panics (recovered by catch_unwind +
    /// retry-once + serial fallback).
    pub const WORKER_PANIC: &str = "par.worker_panic";
    /// The process dies mid-append to the durable run journal: either
    /// between writing the segment temp file and the atomic rename
    /// (orphan `.tmp` left behind) or after a torn partial write made
    /// it into the renamed segment (recovered by `Journal::recover`
    /// truncating the torn tail and the caller re-appending).
    pub const JOURNAL_CRASH: &str = "journal.crash";
    /// A detailed-simulator shard worker panics mid-epoch (recovered
    /// by abandoning the parallel run and re-simulating the launch
    /// serially from a pristine snapshot — results stay bit-identical
    /// because serial IS the reference schedule).
    pub const SIM_SHARD: &str = "sim.shard";
    /// The client connection of a `gtpin serve` session drops while
    /// the daemon is streaming the response (recovered by abandoning
    /// delivery only: the computed response is already journaled and
    /// cached, the session is accounted, and the daemon keeps
    /// serving its other sessions).
    pub const SERVE_CONN_DROP: &str = "serve.conn_drop";
    /// A `gtpin serve` session handler panics mid-request (recovered
    /// by catch_unwind isolation: the session is demoted to a typed
    /// `error[session]` response and the daemon — and every sibling
    /// session — keeps running).
    pub const SERVE_SESSION_CRASH: &str = "serve.session_crash";
    /// A sealed memo-cache payload is corrupted at rest (recovered by
    /// verify-on-read: the fnv64 digest mismatch quarantines the
    /// entry and the caller recomputes it from source — results stay
    /// bit-identical because recompute IS the reference path).
    pub const CACHE_CORRUPT: &str = "cache.corrupt";

    /// Every named site, for matrix drivers.
    pub const ALL: [&str; 10] = [
        SHARD_OVERFLOW,
        RECORD_CORRUPT,
        JIT_FAIL,
        LAUNCH_HANG,
        WORKER_PANIC,
        JOURNAL_CRASH,
        SIM_SHARD,
        SERVE_CONN_DROP,
        SERVE_SESSION_CRASH,
        CACHE_CORRUPT,
    ];
}

/// A complete, immutable description of one fault trial: the seed and
/// a per-site injection rate. Everything the registry decides is a
/// pure function of this plan plus the caller-supplied key.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Injection probability per site, in `[0, 1]`. Absent = 0.
    pub rates: BTreeMap<String, f64>,
}

impl FaultPlan {
    /// A plan that is armed but never fires: all rates zero.
    pub fn quiescent(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rates: BTreeMap::new(),
        }
    }

    /// A plan with a single active site.
    pub fn single(site: &str, rate: f64, seed: u64) -> FaultPlan {
        FaultPlan::quiescent(seed).with_rate(site, rate)
    }

    /// A plan firing every known site at `rate`.
    pub fn uniform(rate: f64, seed: u64) -> FaultPlan {
        let mut plan = FaultPlan::quiescent(seed);
        for s in site::ALL {
            plan = plan.with_rate(s, rate);
        }
        plan
    }

    /// Builder: set one site's rate.
    pub fn with_rate(mut self, site: &str, rate: f64) -> FaultPlan {
        self.rates.insert(site.to_string(), rate);
        self
    }

    /// The injection rate for `site` (0 when unlisted).
    pub fn rate(&self, site: &str) -> f64 {
        self.rates.get(site).copied().unwrap_or(0.0)
    }

    /// Parse the `GTPIN_FAULTS` value. `Ok(None)` means disabled.
    pub fn parse(spec: &str) -> Result<Option<FaultPlan>, String> {
        let trimmed = spec.trim();
        match trimmed.to_ascii_lowercase().as_str() {
            "" | "0" | "false" | "off" | "no" => return Ok(None),
            "1" | "true" | "yes" | "on" => {
                let seed = std::env::var(FAULTS_SEED_ENV)
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
                    .unwrap_or(DEFAULT_SEED);
                return Ok(Some(FaultPlan::quiescent(seed)));
            }
            _ => {}
        }
        let mut plan = FaultPlan::quiescent(DEFAULT_SEED);
        for part in trimmed.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault spec `{part}` is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key == "seed" {
                plan.seed = value
                    .parse()
                    .map_err(|_| format!("fault seed `{value}` is not an integer"))?;
                continue;
            }
            let rate: f64 = value
                .parse()
                .map_err(|_| format!("fault rate `{value}` for `{key}` is not a number"))?;
            if !(0.0..=1.0).contains(&rate) {
                return Err(format!("fault rate {rate} for `{key}` outside [0, 1]"));
            }
            if key == "all" {
                for s in site::ALL {
                    plan = plan.with_rate(s, rate);
                }
            } else if site::ALL.contains(&key) {
                plan = plan.with_rate(key, rate);
            } else {
                return Err(format!(
                    "unknown fault site `{key}` (known: {})",
                    site::ALL.join(", ")
                ));
            }
        }
        Ok(Some(plan))
    }
}

struct State {
    /// The single branch every instrumented seam checks.
    enabled: AtomicBool,
    plan: Mutex<FaultPlan>,
    /// Named event counters: `injected.<site>`, `recovered.<what>`,
    /// plus whatever seams `note()`.
    accounting: Mutex<BTreeMap<String, u64>>,
    /// Per-(site, identity) call counters, for callers that need a
    /// deterministic occurrence number (e.g. retry attempt keys).
    occurrences: Mutex<HashMap<(&'static str, u64), u64>>,
}

fn state() -> &'static State {
    static GLOBAL: OnceLock<State> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let env_plan = std::env::var(FAULTS_ENV)
            .ok()
            .and_then(|v| match FaultPlan::parse(&v) {
                Ok(p) => p,
                Err(e) => {
                    gtpin_obs::warn!("faults: ignoring invalid {FAULTS_ENV}: {e}");
                    None
                }
            });
        let enabled = env_plan.is_some();
        if enabled {
            quiet_injected_panics();
        }
        State {
            enabled: AtomicBool::new(enabled),
            plan: Mutex::new(env_plan.unwrap_or_else(|| FaultPlan::quiescent(DEFAULT_SEED))),
            accounting: Mutex::new(BTreeMap::new()),
            occurrences: Mutex::new(HashMap::new()),
        }
    })
}

/// The one branch: is fault injection armed at all? Inlines to a
/// relaxed atomic load; every seam checks this before doing anything
/// fault-related.
#[inline]
pub fn enabled() -> bool {
    state().enabled.load(Ordering::Relaxed)
}

/// Install `plan` programmatically (e.g. from `gtpin faults-matrix`),
/// arming the registry and clearing all accounting so a fresh trial
/// starts from zero.
pub fn install(plan: FaultPlan) {
    quiet_injected_panics();
    let s = state();
    *s.plan.lock().unwrap() = plan;
    s.accounting.lock().unwrap().clear();
    s.occurrences.lock().unwrap().clear();
    s.enabled.store(true, Ordering::SeqCst);
}

/// Disarm the registry (instrumented paths go back to the never-taken
/// branch). Accounting is left readable until the next `install`.
pub fn disable() {
    state().enabled.store(false, Ordering::SeqCst);
}

/// splitmix64-style finalizer: full-avalanche mix of one word.
/// Public because key-derivation call sites (sealed caches, the
/// chaos scenario generator) need the same avalanche the registry
/// uses, and two subtly different mixers would be a trap.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string, for site names and other identifiers.
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Should the fault at `site` fire for this `key`?
///
/// The decision is a pure function of `(plan.seed, site, key)`:
/// thread-safe, order-independent, and replay-identical. Rate 0 never
/// fires (without touching the RNG); rate ≥ 1 always fires. A firing
/// decision bumps the `injected.<site>` counter.
#[inline]
pub fn should_inject(site: &'static str, key: u64) -> bool {
    if !enabled() {
        return false;
    }
    should_inject_slow(site, key)
}

#[cold]
fn should_inject_slow(site: &'static str, key: u64) -> bool {
    let s = state();
    let (seed, rate) = {
        let plan = s.plan.lock().unwrap();
        (plan.seed, plan.rate(site))
    };
    if rate <= 0.0 {
        return false;
    }
    let fire = if rate >= 1.0 {
        true
    } else {
        let mut rng = StdRng::seed_from_u64(mix64(seed ^ mix64(hash_str(site) ^ mix64(key))));
        // 53 uniform bits → u in [0, 1), compared against the rate.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < rate
    };
    if fire {
        note_name(format!("injected.{site}"), 1);
    }
    fire
}

/// Deterministic per-(site, identity) occurrence counter: returns 0
/// the first time a given `(site, ident)` pair asks, 1 the next, …
/// Callers mix this into their key when the *same* logical operation
/// can be attempted repeatedly (e.g. JIT retries) and each attempt
/// must get an independent decision.
pub fn occurrence(site: &'static str, ident: u64) -> u64 {
    let s = state();
    let mut occ = s.occurrences.lock().unwrap();
    let n = occ.entry((site, ident)).or_insert(0);
    let out = *n;
    *n += 1;
    out
}

/// Bump a named accounting counter (recovery paths use
/// `recovered.<what>`; seams may add their own names).
pub fn note(event: &str, delta: u64) {
    if !enabled() {
        return;
    }
    note_name(event.to_string(), delta);
}

fn note_name(event: String, delta: u64) {
    let s = state();
    *s.accounting.lock().unwrap().entry(event).or_insert(0) += delta;
}

/// Snapshot of all accounting counters, sorted by name.
pub fn accounting() -> Vec<(String, u64)> {
    state()
        .accounting
        .lock()
        .unwrap()
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect()
}

/// Drain the accounting counters, returning the snapshot and leaving
/// the registry at zero (used between matrix scenarios).
pub fn take_accounting() -> Vec<(String, u64)> {
    let s = state();
    let mut acc = s.accounting.lock().unwrap();
    let out = acc.iter().map(|(k, v)| (k.clone(), *v)).collect();
    acc.clear();
    s.occurrences.lock().unwrap().clear();
    out
}

/// Human-readable degradation summary: what fired, what recovered.
pub fn summary() -> String {
    let acc = accounting();
    let mut out = String::new();
    if acc.is_empty() {
        out.push_str("degradation: no faults fired\n");
        return out;
    }
    out.push_str("degradation summary:\n");
    for (name, count) in acc {
        out.push_str(&format!("  {name:40} {count:>8}\n"));
    }
    out
}

/// `Some(summary())` only when the registry is armed — lets callers
/// print the degradation report exactly when fault injection was on.
pub fn summary_if_enabled() -> Option<String> {
    enabled().then(summary)
}

/// The seed of the currently installed plan (for reporting).
pub fn current_seed() -> u64 {
    state().plan.lock().unwrap().seed
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global; tests that install plans must
    // not interleave.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn parse_forms() {
        let _g = LOCK.lock().unwrap();
        assert_eq!(FaultPlan::parse("0").unwrap(), None);
        assert_eq!(FaultPlan::parse("off").unwrap(), None);
        assert_eq!(FaultPlan::parse("").unwrap(), None);
        let armed = FaultPlan::parse("1").unwrap().unwrap();
        assert!(armed.rates.is_empty());
        let spec = FaultPlan::parse("seed=9,jit.build_fail=0.5,all=0.1")
            .unwrap()
            .unwrap();
        assert_eq!(spec.seed, 9);
        // `all` came after the specific site, so it overwrote it.
        assert_eq!(spec.rate(site::JIT_FAIL), 0.1);
        assert_eq!(spec.rate(site::WORKER_PANIC), 0.1);
        let spec = FaultPlan::parse("all=0.1,trace.record_corrupt=0.9")
            .unwrap()
            .unwrap();
        assert_eq!(spec.rate(site::RECORD_CORRUPT), 0.9);
        assert!(FaultPlan::parse("bogus.site=0.5").is_err());
        assert!(FaultPlan::parse("all=1.5").is_err());
        assert!(FaultPlan::parse("seed=xyz").is_err());
    }

    #[test]
    fn decisions_are_deterministic_and_rate_bounded() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::single(site::JIT_FAIL, 0.5, 1234));
        let first: Vec<bool> = (0..256).map(|k| should_inject(site::JIT_FAIL, k)).collect();
        // Replay with the same plan: identical decisions.
        install(FaultPlan::single(site::JIT_FAIL, 0.5, 1234));
        let second: Vec<bool> = (0..256).map(|k| should_inject(site::JIT_FAIL, k)).collect();
        assert_eq!(first, second);
        let fired = first.iter().filter(|&&f| f).count();
        assert!(fired > 64 && fired < 192, "rate 0.5 fired {fired}/256");
        // A different seed decides differently somewhere.
        install(FaultPlan::single(site::JIT_FAIL, 0.5, 99));
        let third: Vec<bool> = (0..256).map(|k| should_inject(site::JIT_FAIL, k)).collect();
        assert_ne!(first, third);
        disable();
    }

    #[test]
    fn rate_edges() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::single(site::LAUNCH_HANG, 1.0, 5));
        assert!((0..64).all(|k| should_inject(site::LAUNCH_HANG, k)));
        // Unlisted site never fires, and neither does rate 0.
        assert!(!(0..64).any(|k| should_inject(site::JIT_FAIL, k)));
        install(FaultPlan::quiescent(5));
        assert!(!(0..64).any(|k| should_inject(site::LAUNCH_HANG, k)));
        disable();
        assert!(!should_inject(site::LAUNCH_HANG, 0));
    }

    #[test]
    fn accounting_tracks_injections_and_notes() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::single(site::WORKER_PANIC, 1.0, 7));
        for k in 0..5 {
            should_inject(site::WORKER_PANIC, k);
        }
        note("recovered.worker_retry", 3);
        let acc: BTreeMap<String, u64> = accounting().into_iter().collect();
        assert_eq!(acc["injected.par.worker_panic"], 5);
        assert_eq!(acc["recovered.worker_retry"], 3);
        let text = summary();
        assert!(text.contains("injected.par.worker_panic"));
        let drained = take_accounting();
        assert_eq!(drained.len(), 2);
        assert!(accounting().is_empty());
        disable();
    }

    #[test]
    fn occurrences_count_per_identity() {
        let _g = LOCK.lock().unwrap();
        install(FaultPlan::quiescent(1));
        assert_eq!(occurrence(site::JIT_FAIL, 10), 0);
        assert_eq!(occurrence(site::JIT_FAIL, 10), 1);
        assert_eq!(occurrence(site::JIT_FAIL, 11), 0);
        install(FaultPlan::quiescent(1)); // reinstall clears
        assert_eq!(occurrence(site::JIT_FAIL, 10), 0);
        disable();
    }
}
