//! Verify-on-read sealed payloads for self-healing memo caches.
//!
//! A cache that is never re-validated silently serves whatever bit
//! rot (or bug) left in it. A [`Sealed`] entry pairs a canonical
//! byte payload with its fnv64 digest (the same checksum the
//! `GTOBS01`/`GTJRNL01` framing uses, via [`gtpin_obs::frame`]):
//! the owner seals the bytes once at insert and re-verifies them on
//! every read. A mismatch means the entry can no longer be trusted —
//! the caller quarantines it and recomputes from source, which is
//! lossless because recompute is the reference path that produced
//! the entry in the first place ("heal, don't trust").
//!
//! The `cache.corrupt` fault site drives the negative path
//! deterministically: when armed, an occurrence-salted decision
//! flips one payload byte *before* the digest check, so the
//! corruption the verifier catches is real, not simulated. Every
//! heal is accounted through [`note_heal`] (`recovered.cache_heal`
//! in the fault accounting, `cache.heal` in telemetry).

use crate::{enabled, mix64, occurrence, should_inject, site};

/// A byte payload sealed with its fnv64 digest at insert time.
#[derive(Debug, Clone)]
pub struct Sealed {
    payload: Vec<u8>,
    digest: u64,
}

impl Sealed {
    /// Seal `payload`: record its fnv64 so every later read can
    /// prove the bytes are still the ones that were inserted.
    pub fn new(payload: Vec<u8>) -> Sealed {
        let digest = gtpin_obs::frame::fnv64(&payload);
        Sealed { payload, digest }
    }

    /// Verify-on-read. With the `cache.corrupt` site armed, an
    /// occurrence-salted injection first flips one payload byte (so
    /// repeated reads of the same entry get independent, replayable
    /// decisions); then the stored digest is checked against the
    /// payload. Returns `Some(bytes)` when the seal holds, `None`
    /// after a mismatch — the caller must quarantine the entry,
    /// recompute it, and account the heal via [`note_heal`].
    ///
    /// `ident` is the entry's stable identity (e.g. a hash of its
    /// cache key); decisions are pure in `(plan, ident, occurrence)`.
    pub fn read(&mut self, ident: u64) -> Option<&[u8]> {
        if enabled() && !self.payload.is_empty() {
            let occ = occurrence(site::CACHE_CORRUPT, ident);
            if should_inject(
                site::CACHE_CORRUPT,
                ident.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(occ),
            ) {
                let pos = (mix64(ident ^ mix64(occ)) as usize) % self.payload.len();
                self.payload[pos] ^= 0xFF;
            }
        }
        if gtpin_obs::frame::fnv64(&self.payload) == self.digest {
            Some(&self.payload)
        } else {
            None
        }
    }

    /// The digest recorded at seal time (for reporting).
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

/// Account one heal of a corrupted cache entry: `what` names the
/// cache (e.g. `serve.profile`, `selection.interval_table`). Bumps
/// the shared `recovered.cache_heal` fault counter, a per-cache
/// `healed.<what>` counter, and the `cache.heal` telemetry counter.
pub fn note_heal(what: &str) {
    crate::note("recovered.cache_heal", 1);
    crate::note(&format!("healed.{what}"), 1);
    gtpin_obs::counter_add("cache.heal", 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{accounting, disable, install, FaultPlan};
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    // The registry is process-global; tests that install plans must
    // not interleave (same discipline as the lib tests).
    static LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn intact_seal_reads_back_the_bytes() {
        let _g = lock();
        disable();
        let mut s = Sealed::new(b"interval table payload".to_vec());
        assert_eq!(s.read(7), Some(&b"interval table payload"[..]));
        // Reads are repeatable with faults off.
        assert_eq!(s.read(7), Some(&b"interval table payload"[..]));
    }

    #[test]
    fn corruption_at_rate_one_is_caught_every_read() {
        let _g = lock();
        install(FaultPlan::single(site::CACHE_CORRUPT, 1.0, 42));
        let mut s = Sealed::new(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(s.read(99), None, "flipped byte must fail the seal");
        note_heal("test.cache");
        let acc: BTreeMap<String, u64> = accounting().into_iter().collect();
        assert_eq!(acc["injected.cache.corrupt"], 1);
        assert_eq!(acc["recovered.cache_heal"], 1);
        assert_eq!(acc["healed.test.cache"], 1);
        disable();
    }

    #[test]
    fn corruption_decisions_replay_identically() {
        let _g = lock();
        let run = || -> Vec<bool> {
            install(FaultPlan::single(site::CACHE_CORRUPT, 0.5, 1234));
            (0..64)
                .map(|ident| Sealed::new(vec![0xAB; 16]).read(ident).is_none())
                .collect()
        };
        let first = run();
        let second = run();
        assert_eq!(first, second);
        let corrupted = first.iter().filter(|&&c| c).count();
        assert!(
            corrupted > 8 && corrupted < 56,
            "rate 0.5 corrupted {corrupted}/64"
        );
        disable();
    }

    #[test]
    fn reseal_after_recompute_heals_the_entry() {
        let _g = lock();
        install(FaultPlan::single(site::CACHE_CORRUPT, 1.0, 7));
        let mut s = Sealed::new(b"value".to_vec());
        assert!(s.read(1).is_none());
        // The heal path: recompute the value, seal it fresh.
        s = Sealed::new(b"value".to_vec());
        disable();
        assert_eq!(s.read(1), Some(&b"value"[..]));
    }
}
