//! Golden-file tests for the exporters: a scripted run on a manual
//! clock must serialize byte-for-byte identically across platforms
//! and refactors (the JSONL schema is a published interface — the
//! check.sh smoke gate and any downstream tooling parse it).

use gtpin_obs::{ArgVal, ManualClock, Registry};
use std::sync::Arc;

/// A deterministic scripted run exercising every event kind and
/// every aggregate type.
fn scripted_run() -> Registry {
    let clock = Arc::new(ManualClock::new());
    let reg = Registry::new(true, Box::new(clock.clone()));
    script(&reg, &clock);
    reg
}

fn script(reg: &Registry, clock: &ManualClock) {
    reg.instant("run.start", Vec::new());
    clock.advance(100);
    {
        let mut span = reg.span("engine.launch");
        span.arg_u64("invocation", 7);
        span.arg("kernel", ArgVal::Str("k0".into()));
        clock.advance(450);
    }
    clock.advance(50);
    reg.warn("trace buffer dropped 3 records".into());
    reg.counter_add("executor.trace_records", 4096);
    reg.counter_add("executor.trace_dropped", 3);
    reg.gauge_set("engine.overhead_ratio", 3.25);
    for v in [96u64, 128, 256] {
        reg.hist_record("par.task_ns", v);
    }
}

/// The same scripted run recorded through the GTOBS01 binary journal
/// (in-memory sink), flushed so the totals section is present.
fn scripted_binary_run() -> (Registry, Vec<u8>) {
    let clock = Arc::new(ManualClock::new());
    let (reg, buf) = Registry::with_buffer_sink(true, Box::new(clock.clone()));
    script(&reg, &clock);
    reg.flush().expect("buffer sink never fails");
    let bytes = buf.lock().unwrap().clone();
    (reg, bytes)
}

#[test]
fn jsonl_matches_golden() {
    let snap = scripted_run().snapshot();
    assert_eq!(
        gtpin_obs::jsonl(&snap),
        include_str!("golden/journal.jsonl")
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let snap = scripted_run().snapshot();
    assert_eq!(
        gtpin_obs::chrome_trace(&snap),
        include_str!("golden/trace.json").trim_end()
    );
}

#[test]
fn exports_are_valid_json() {
    let snap = scripted_run().snapshot();
    for line in gtpin_obs::jsonl(&snap).lines() {
        serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("journal line is not valid JSON: {e}\n{line}"));
    }
    let trace = gtpin_obs::chrome_trace(&snap);
    serde_json::from_str_value(&trace).expect("chrome trace is valid JSON");
}

#[test]
fn binary_jsonl_conversion_matches_golden_and_direct_writer() {
    let (reg, bytes) = scripted_binary_run();
    let converted = gtpin_obs::reader::to_jsonl(&bytes);
    // Byte-identical to the legacy direct writer over the same run —
    // and therefore to the pinned golden file.
    assert_eq!(converted, gtpin_obs::jsonl(&reg.snapshot()));
    assert_eq!(converted, include_str!("golden/journal.jsonl"));
}

#[test]
fn binary_chrome_conversion_matches_golden_and_direct_exporter() {
    let (reg, bytes) = scripted_binary_run();
    let converted = gtpin_obs::reader::to_chrome_trace(&bytes);
    assert_eq!(converted, gtpin_obs::chrome_trace(&reg.snapshot()));
    assert_eq!(converted, include_str!("golden/trace.json").trim_end());
}

#[test]
fn binary_journal_verifies_clean() {
    let (_reg, bytes) = scripted_binary_run();
    let report = gtpin_obs::reader::verify(&bytes).expect("clean journal verifies");
    assert_eq!(report.streams, 1);
    assert!(report.records > 0, "events and totals recorded");
    assert!(report.strings > 0, "names interned");
    assert_eq!(report.bytes % 64, 0, "everything stays 64-byte aligned");
}

#[test]
fn binary_summary_matches_snapshot_summary() {
    let (reg, bytes) = scripted_binary_run();
    assert_eq!(gtpin_obs::reader::summarize(&bytes), reg.summary());
}

#[test]
fn summary_mentions_every_stage() {
    let reg = scripted_run();
    let summary = reg.summary();
    for needle in [
        "engine.launch",
        "executor.trace_records",
        "engine.overhead_ratio",
        "par.task_ns",
        "1 warning(s)",
    ] {
        assert!(
            summary.contains(needle),
            "summary missing {needle}:\n{summary}"
        );
    }
}

#[test]
fn escaped_strings_round_trip_through_jsonl() {
    let clock = Arc::new(ManualClock::new());
    let reg = Registry::new(true, Box::new(clock));
    reg.warn("quote \" backslash \\ newline \n tab \t done".into());
    let snap = reg.snapshot();
    let out = gtpin_obs::jsonl(&snap);
    let line = out.lines().next().expect("one line");
    serde_json::from_str_value(line).expect("escaped warn line is valid JSON");
    assert!(line.contains("\\\"") && line.contains("\\\\") && line.contains("\\n"));
}
