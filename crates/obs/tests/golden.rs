//! Golden-file tests for the exporters: a scripted run on a manual
//! clock must serialize byte-for-byte identically across platforms
//! and refactors (the JSONL schema is a published interface — the
//! check.sh smoke gate and any downstream tooling parse it).

use gtpin_obs::{ArgVal, ManualClock, Registry};
use std::sync::Arc;

/// A deterministic scripted run exercising every event kind and
/// every aggregate type.
fn scripted_run() -> Registry {
    let clock = Arc::new(ManualClock::new());
    let reg = Registry::new(true, Box::new(clock.clone()));

    reg.instant("run.start", Vec::new());
    clock.advance(100);
    {
        let mut span = reg.span("engine.launch");
        span.arg_u64("invocation", 7);
        span.arg("kernel", ArgVal::Str("k0".into()));
        clock.advance(450);
    }
    clock.advance(50);
    reg.warn("trace buffer dropped 3 records".into());
    reg.counter_add("executor.trace_records", 4096);
    reg.counter_add("executor.trace_dropped", 3);
    reg.gauge_set("engine.overhead_ratio", 3.25);
    for v in [96u64, 128, 256] {
        reg.hist_record("par.task_ns", v);
    }
    reg
}

#[test]
fn jsonl_matches_golden() {
    let snap = scripted_run().snapshot();
    assert_eq!(
        gtpin_obs::jsonl(&snap),
        include_str!("golden/journal.jsonl")
    );
}

#[test]
fn chrome_trace_matches_golden() {
    let snap = scripted_run().snapshot();
    assert_eq!(
        gtpin_obs::chrome_trace(&snap),
        include_str!("golden/trace.json").trim_end()
    );
}

#[test]
fn exports_are_valid_json() {
    let snap = scripted_run().snapshot();
    for line in gtpin_obs::jsonl(&snap).lines() {
        serde_json::from_str_value(line)
            .unwrap_or_else(|e| panic!("journal line is not valid JSON: {e}\n{line}"));
    }
    let trace = gtpin_obs::chrome_trace(&snap);
    serde_json::from_str_value(&trace).expect("chrome trace is valid JSON");
}

#[test]
fn summary_mentions_every_stage() {
    let reg = scripted_run();
    let summary = reg.summary();
    for needle in [
        "engine.launch",
        "executor.trace_records",
        "engine.overhead_ratio",
        "par.task_ns",
        "1 warning(s)",
    ] {
        assert!(
            summary.contains(needle),
            "summary missing {needle}:\n{summary}"
        );
    }
}

#[test]
fn escaped_strings_round_trip_through_jsonl() {
    let clock = Arc::new(ManualClock::new());
    let reg = Registry::new(true, Box::new(clock));
    reg.warn("quote \" backslash \\ newline \n tab \t done".into());
    let snap = reg.snapshot();
    let out = gtpin_obs::jsonl(&snap);
    let line = out.lines().next().expect("one line");
    serde_json::from_str_value(line).expect("escaped warn line is valid JSON");
    assert!(line.contains("\\\"") && line.contains("\\\\") && line.contains("\\n"));
}
