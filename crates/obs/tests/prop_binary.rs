//! GTOBS01 binary-journal properties, mirroring the `gtpin-durable`
//! torn-tail suite:
//!
//! 1. truncating a journal at **every byte offset** of its final
//!    section recovers exactly the records of the intact prefix — a
//!    torn section is never parsed as data, and recovery physically
//!    repairs the file so a second pass is clean;
//! 2. converting an arbitrary event sequence binary→JSONL is
//!    byte-identical to the legacy direct JSONL writer over the same
//!    events (the contract that let the text writer be demoted to a
//!    converter in the first place).

use std::sync::Arc;

use gtpin_obs::binary::{HEADER_LEN, SECTION_HEADER_LEN};
use gtpin_obs::reader;
use gtpin_obs::{ArgVal, ManualClock, Registry};
use proptest::prelude::*;

/// Small deterministic generator so every case is self-contained.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

const NAMES: [&str; 6] = [
    "engine.launch",
    "par.task",
    "sim.eu_epoch",
    "stage.alpha",
    "stage.beta/γ",
    "x",
];

fn warn_msg(rng: &mut Lcg) -> String {
    let pieces = [
        "plain",
        "quote\"",
        "back\\slash",
        "new\nline",
        "tab\t",
        "ctrl\u{1}",
        "grüße",
        "",
    ];
    let mut msg = String::new();
    for _ in 0..rng.below(4) + 1 {
        msg.push_str(pieces[rng.below(pieces.len() as u64) as usize]);
    }
    msg
}

fn random_arg(rng: &mut Lcg) -> ArgVal {
    match rng.below(6) {
        0 => ArgVal::U64(rng.next()),
        1 => ArgVal::I64(rng.next() as i64),
        2 => ArgVal::F64(rng.next() as f64 / 7.0),
        3 => ArgVal::F64(f64::NAN),
        4 => ArgVal::Str(warn_msg(rng)),
        _ => ArgVal::Bool(rng.below(2) == 1),
    }
}

const ARG_KEYS: [&str; 4] = ["items", "kernel", "ratio", "eu"];

/// Drive `count` pseudo-random recording operations against `reg`.
fn scripted_ops(reg: &Registry, clock: &ManualClock, seed: u64, count: usize) {
    let mut rng = Lcg(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
    for _ in 0..count {
        let name = NAMES[rng.below(NAMES.len() as u64) as usize];
        match rng.below(7) {
            0 => {
                let mut span = reg.span(name);
                clock.advance(rng.below(5_000));
                for _ in 0..rng.below(4) {
                    span.arg(
                        ARG_KEYS[rng.below(ARG_KEYS.len() as u64) as usize],
                        random_arg(&mut rng),
                    );
                }
            }
            1 => {
                let mut args = Vec::new();
                for _ in 0..rng.below(3) {
                    args.push((
                        ARG_KEYS[rng.below(ARG_KEYS.len() as u64) as usize],
                        random_arg(&mut rng),
                    ));
                }
                reg.instant(name, args);
            }
            2 => reg.warn(warn_msg(&mut rng)),
            3 => reg.counter_add(name, rng.below(1 << 40)),
            4 => reg.gauge_set(name, rng.next() as f64 / 3.0),
            5 => reg.hist_record(name, rng.below(1 << 30)),
            _ => clock.advance(rng.below(10_000)),
        }
    }
}

/// Byte offsets where each section of the (single-stream) journal
/// starts, found by walking the section headers.
fn section_starts(bytes: &[u8]) -> Vec<usize> {
    let mut starts = Vec::new();
    let mut pos = HEADER_LEN;
    while pos + SECTION_HEADER_LEN <= bytes.len() {
        starts.push(pos);
        let pad = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap()) as usize;
        let plen = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap()) as usize;
        pos += SECTION_HEADER_LEN + plen + pad;
    }
    assert_eq!(pos, bytes.len(), "sections tile the stream exactly");
    starts
}

/// Every record of every stream, decoded (test-side helper; the
/// production reader iterates without collecting).
fn all_records(bytes: &[u8]) -> Vec<gtpin_obs::binary::RawRecord> {
    let journal = reader::scan(bytes);
    let mut out = Vec::new();
    for stream in &journal.streams {
        for section in &stream.sections {
            for i in 0..section.record_count() {
                out.push(section.record(i));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Tear the final section at every byte offset: the scan must
    /// recover exactly the records of the sections wholly before the
    /// cut, `recover()` must truncate the tear so the file verifies
    /// clean afterwards, and a second recovery pass must be a no-op.
    #[test]
    fn truncation_at_every_offset_recovers_the_exact_prefix(
        seed in 0u64..100_000,
        ops in 4usize..48,
    ) {
        let clock = Arc::new(ManualClock::new());
        let (reg, buf) = Registry::with_buffer_sink(true, Box::new(clock.clone()));
        scripted_ops(&reg, &clock, seed, ops);
        // Guarantee the totals section is non-empty so the final
        // section always holds records to lose.
        reg.counter_add("prop.ops", ops as u64);
        reg.flush().unwrap();
        let bytes = buf.lock().unwrap().clone();

        let starts = section_starts(&bytes);
        let boundary = *starts.last().expect("flush wrote at least the totals section");
        let expected = all_records(&bytes[..boundary]);

        let dir = std::env::temp_dir()
            .join(format!("gtpin-prop-obs-{}-{seed}-{ops}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.gtobs");

        for cut in boundary..bytes.len() {
            let truncated = &bytes[..cut];
            prop_assert_eq!(
                all_records(truncated),
                expected.clone(),
                "records after cut at byte {} of {}",
                cut,
                bytes.len()
            );
            let journal = reader::scan(truncated);
            prop_assert_eq!(journal.torn_tail_bytes, cut - boundary, "cut at {}", cut);
            if cut > boundary {
                prop_assert!(
                    reader::verify(truncated).is_err(),
                    "torn journal must not verify (cut {})",
                    cut
                );
            }

            // Physical recovery: truncate the tear, then re-verify.
            std::fs::write(&path, truncated).unwrap();
            let recovery = reader::recover(&path).unwrap();
            prop_assert_eq!(recovery.truncated_bytes, (cut - boundary) as u64);
            prop_assert_eq!(recovery.valid_bytes, boundary as u64);
            let repaired = std::fs::read(&path).unwrap();
            prop_assert_eq!(repaired.len(), boundary);
            prop_assert!(
                reader::verify(&repaired).is_ok() || expected.is_empty(),
                "repaired journal verifies clean (cut {})",
                cut
            );
            let again = reader::recover(&path).unwrap();
            prop_assert_eq!(again.truncated_bytes, 0, "repair converges in one pass");
        }

        // Sanity: the untouched journal verifies and holds strictly
        // more records than the prefix.
        prop_assert!(reader::verify(&bytes).is_ok());
        prop_assert!(all_records(&bytes).len() > expected.len());
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Binary → JSONL conversion is byte-identical to the legacy
    /// direct JSONL writer (`export::jsonl` over the same snapshot)
    /// for arbitrary event sequences, arguments, escapes, and
    /// non-finite floats.
    #[test]
    fn binary_to_jsonl_matches_direct_writer(
        seed in 0u64..1_000_000,
        ops in 1usize..300,
    ) {
        let clock = Arc::new(ManualClock::new());
        let (reg, buf) = Registry::with_buffer_sink(true, Box::new(clock.clone()));
        scripted_ops(&reg, &clock, seed, ops);
        reg.flush().unwrap();
        let bytes = buf.lock().unwrap().clone();
        let direct = gtpin_obs::jsonl(&reg.snapshot());
        let converted = reader::to_jsonl(&bytes);
        prop_assert_eq!(converted, direct);
        // And the journal itself is structurally sound.
        prop_assert!(reader::verify(&bytes).is_ok());
    }
}
