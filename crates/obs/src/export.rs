//! Exporters: JSONL journal lines, the Chrome `trace_event` file,
//! and the human-readable per-stage summary table.
//!
//! Everything here is hand-rolled string assembly — the obs crate
//! takes no dependencies, and both formats are simple enough that a
//! serializer would be more code than the escaping below. The JSONL
//! schema is stable and covered by golden-file tests:
//!
//! ```text
//! {"type":"span","name":"engine.launch","tid":0,"ts_ns":120,"dur_ns":480,"args":{"kernel":"k0"}}
//! {"type":"instant","name":"engine.attach","tid":0,"ts_ns":0}
//! {"type":"warn","tid":0,"ts_ns":90,"msg":"..."}
//! {"type":"counter","name":"executor.trace_records","value":4096}
//! {"type":"gauge","name":"engine.overhead_ratio","value":3.25}
//! {"type":"hist","name":"par.task_ns","count":8,"sum":1024,"min":96,"max":256,"p50":127,"p99":255}
//! ```
//!
//! The line-level formatters are shared between two producers: the
//! legacy snapshot exporters here ([`jsonl`], [`chrome_trace`]) and
//! the binary-journal converters in [`crate::reader`]. That sharing
//! is what makes the binary→JSONL conversion byte-identical to the
//! direct writer by construction.

use crate::registry::{ArgVal, Event, EventKind, Histogram, Snapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    // JSON has no NaN/Infinity; export them as null so consumers
    // (and our own verifier) never see invalid syntax.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A borrowed argument value — the common currency between snapshot
/// events (owned [`ArgVal`]) and binary-journal records (values
/// decoded in place).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ArgRef<'a> {
    U64(u64),
    I64(i64),
    F64(f64),
    Str(&'a str),
    Bool(bool),
}

impl<'a> From<&'a ArgVal> for ArgRef<'a> {
    fn from(v: &'a ArgVal) -> ArgRef<'a> {
        match v {
            ArgVal::U64(v) => ArgRef::U64(*v),
            ArgVal::I64(v) => ArgRef::I64(*v),
            ArgVal::F64(v) => ArgRef::F64(*v),
            ArgVal::Str(v) => ArgRef::Str(v),
            ArgVal::Bool(v) => ArgRef::Bool(*v),
        }
    }
}

fn fmt_arg_ref(value: &ArgRef<'_>) -> String {
    match value {
        ArgRef::U64(v) => format!("{v}"),
        ArgRef::I64(v) => format!("{v}"),
        ArgRef::F64(v) => fmt_f64(*v),
        ArgRef::Str(v) => format!("\"{}\"", json_escape(v)),
        ArgRef::Bool(v) => format!("{v}"),
    }
}

pub(crate) fn fmt_args_ref(args: &[(&str, ArgRef<'_>)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), fmt_arg_ref(v));
    }
    out.push('}');
    out
}

/// The rendered args object, or `None` when there are no args (JSONL
/// lines omit the `args` field entirely in that case).
pub(crate) fn fmt_args_opt(args: &[(&str, ArgRef<'_>)]) -> Option<String> {
    if args.is_empty() {
        None
    } else {
        Some(fmt_args_ref(args))
    }
}

/// One `"type":"span"` JSONL line (newline-terminated); `args` is the
/// pre-rendered args object, absent when the span had none.
pub(crate) fn jsonl_span(
    name: &str,
    tid: u32,
    ts_ns: u64,
    dur_ns: u64,
    args: Option<&str>,
) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"ts_ns\":{},\"dur_ns\":{}",
        json_escape(name),
        tid,
        ts_ns,
        dur_ns
    );
    finish_jsonl(line, args)
}

/// One `"type":"instant"` JSONL line.
pub(crate) fn jsonl_instant(name: &str, tid: u32, ts_ns: u64, args: Option<&str>) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"type\":\"instant\",\"name\":\"{}\",\"tid\":{},\"ts_ns\":{}",
        json_escape(name),
        tid,
        ts_ns
    );
    finish_jsonl(line, args)
}

/// One `"type":"warn"` JSONL line.
pub(crate) fn jsonl_warn(tid: u32, ts_ns: u64, msg: &str, args: Option<&str>) -> String {
    let mut line = String::with_capacity(96);
    let _ = write!(
        line,
        "{{\"type\":\"warn\",\"tid\":{},\"ts_ns\":{},\"msg\":\"{}\"",
        tid,
        ts_ns,
        json_escape(msg)
    );
    finish_jsonl(line, args)
}

fn finish_jsonl(mut line: String, args: Option<&str>) -> String {
    if let Some(args) = args {
        let _ = write!(line, ",\"args\":{args}");
    }
    line.push_str("}\n");
    line
}

/// One `"type":"counter"` totals line.
pub(crate) fn jsonl_counter(name: &str, value: u64) -> String {
    format!(
        "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}\n",
        json_escape(name),
        value
    )
}

/// One `"type":"gauge"` totals line.
pub(crate) fn jsonl_gauge(name: &str, value: f64) -> String {
    format!(
        "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}\n",
        json_escape(name),
        fmt_f64(value)
    )
}

/// One `"type":"hist"` totals line.
pub(crate) fn jsonl_hist(name: &str, h: &Histogram) -> String {
    format!(
        "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}\n",
        json_escape(name),
        h.count,
        h.sum,
        if h.count == 0 { 0 } else { h.min },
        h.max,
        h.quantile(0.5),
        h.quantile(0.99)
    )
}

/// Render one event as a JSONL line (newline-terminated).
pub fn event_jsonl_line(event: &Event) -> String {
    let refs: Vec<(&str, ArgRef)> = event
        .args
        .iter()
        .map(|(k, v)| (*k, ArgRef::from(v)))
        .collect();
    let args = fmt_args_opt(&refs);
    match &event.kind {
        EventKind::Span { dur_ns } => {
            jsonl_span(event.name, event.tid, event.ts_ns, *dur_ns, args.as_deref())
        }
        EventKind::Instant => jsonl_instant(event.name, event.tid, event.ts_ns, args.as_deref()),
        EventKind::Warn { msg } => jsonl_warn(event.tid, event.ts_ns, msg, args.as_deref()),
    }
}

/// Render the counter/gauge/histogram totals as JSONL lines —
/// appended to the journal when artifacts are written, so the journal
/// ends with a self-contained summary of the run.
pub fn totals_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        out.push_str(&jsonl_counter(name, *value));
    }
    for (name, value) in &snap.gauges {
        out.push_str(&jsonl_gauge(name, *value));
    }
    for (name, h) in &snap.histograms {
        out.push_str(&jsonl_hist(name, h));
    }
    if snap.dropped_events > 0 {
        out.push_str(&jsonl_counter("obs.dropped_events", snap.dropped_events));
    }
    out
}

/// Render the whole journal (events then totals) as one JSONL string.
/// Used by tests and the proptests pinning converter identity; the
/// process-wide registry records to the binary journal instead and
/// derives this form via [`crate::reader::to_jsonl`].
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for event in &snap.events {
        out.push_str(&event_jsonl_line(event));
    }
    out.push_str(&totals_jsonl(snap));
    out
}

/// Microseconds with three decimals — Chrome's `ts`/`dur` unit.
fn ns_to_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// One complete (`"ph":"X"`) Chrome trace entry.
pub(crate) fn chrome_span(
    tid: u32,
    ts_ns: u64,
    dur_ns: u64,
    name: &str,
    args: &[(&str, ArgRef<'_>)],
) -> String {
    format!(
        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"gtpin\",\"name\":\"{}\",\"args\":{}}}",
        tid,
        ns_to_us(ts_ns),
        ns_to_us(dur_ns),
        json_escape(name),
        fmt_args_ref(args)
    )
}

/// One instant (`"ph":"i"`) Chrome trace entry.
pub(crate) fn chrome_instant(
    tid: u32,
    ts_ns: u64,
    name: &str,
    args: &[(&str, ArgRef<'_>)],
) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"gtpin\",\"name\":\"{}\",\"args\":{}}}",
        tid,
        ns_to_us(ts_ns),
        json_escape(name),
        fmt_args_ref(args)
    )
}

/// One warning Chrome trace entry (an instant named after the
/// message, in the `warn` category).
pub(crate) fn chrome_warn(tid: u32, ts_ns: u64, msg: &str) -> String {
    format!(
        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"warn\",\"name\":\"{}\",\"args\":{{}}}}",
        tid,
        ns_to_us(ts_ns),
        json_escape(msg)
    )
}

/// One counter sample (`"ph":"C"`) Chrome trace entry.
pub(crate) fn chrome_counter(ts_ns: u64, name: &str, value: u64) -> String {
    format!(
        "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
        ns_to_us(ts_ns),
        json_escape(name),
        value
    )
}

/// Render the snapshot as a Chrome `trace_event` JSON document that
/// loads in `about:tracing` and Perfetto. Spans become complete
/// (`"ph":"X"`) events; instants become `"ph":"i"`; warnings become
/// instants named after the message; counters become one `"ph":"C"`
/// sample at the end of the trace.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    let mut last_ts = 0u64;
    for e in &snap.events {
        last_ts = last_ts.max(e.ts_ns);
        let refs: Vec<(&str, ArgRef)> = e.args.iter().map(|(k, v)| (*k, ArgRef::from(v))).collect();
        let entry = match &e.kind {
            EventKind::Span { dur_ns } => {
                last_ts = last_ts.max(e.ts_ns + dur_ns);
                chrome_span(e.tid, e.ts_ns, *dur_ns, e.name, &refs)
            }
            EventKind::Instant => chrome_instant(e.tid, e.ts_ns, e.name, &refs),
            EventKind::Warn { msg } => chrome_warn(e.tid, e.ts_ns, msg),
        };
        push(entry, &mut out, &mut first);
    }
    for (name, value) in &snap.counters {
        push(chrome_counter(last_ts, name, *value), &mut out, &mut first);
    }
    out.push_str("]}");
    out
}

/// The material of a per-stage summary, keyed by borrowed names so
/// both snapshot and binary-journal paths can fill it.
#[derive(Debug, Default)]
pub(crate) struct SummaryData<'a> {
    pub spans: BTreeMap<&'a str, (u64, u64)>,
    pub warns: u64,
    pub counters: BTreeMap<&'a str, u64>,
    pub gauges: BTreeMap<&'a str, f64>,
    pub hists: BTreeMap<&'a str, Histogram>,
    pub dropped: u64,
}

/// Render the human-readable per-stage summary table from collected
/// data: span rollups first (count, total, mean per name), then
/// counters, gauges, and histograms with p50/p95/p99 percentiles.
pub(crate) fn render_summary(data: &SummaryData<'_>) -> String {
    let mut out = String::new();
    if !data.spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>14} {:>14}",
            "span", "count", "total_ms", "mean_us"
        );
        for (name, (count, total_ns)) in &data.spans {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>14.3} {:>14.1}",
                name,
                count,
                *total_ns as f64 / 1e6,
                *total_ns as f64 / 1e3 / *count as f64
            );
        }
    }
    if !data.counters.is_empty() {
        let _ = writeln!(out, "\n{:<34} {:>14}", "counter", "value");
        for (name, value) in &data.counters {
            let _ = writeln!(out, "{:<34} {:>14}", name, value);
        }
    }
    if !data.gauges.is_empty() {
        let _ = writeln!(out, "\n{:<34} {:>14}", "gauge", "value");
        for (name, value) in &data.gauges {
            let _ = writeln!(out, "{:<34} {:>14.4}", name, value);
        }
    }
    if !data.hists.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<34} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "histogram(ns)", "count", "mean", "p50", "p95", "p99"
        );
        for (name, h) in &data.hists {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>10.0} {:>10} {:>10} {:>10}",
                name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            );
        }
    }
    if data.warns > 0 {
        let _ = writeln!(out, "\n{} warning(s) in journal", data.warns);
    }
    if data.dropped > 0 {
        let _ = writeln!(out, "{} event(s) dropped past buffer cap", data.dropped);
    }
    if out.is_empty() {
        out.push_str("no telemetry recorded\n");
    }
    out
}

/// Render the per-stage summary from a snapshot (see
/// [`render_summary`] for the layout).
pub fn summary(snap: &Snapshot) -> String {
    let mut data = SummaryData {
        dropped: snap.dropped_events,
        ..SummaryData::default()
    };
    for e in &snap.events {
        match &e.kind {
            EventKind::Span { dur_ns } => {
                let entry = data.spans.entry(e.name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur_ns;
            }
            EventKind::Warn { .. } => data.warns += 1,
            EventKind::Instant => {}
        }
    }
    for (name, value) in &snap.counters {
        data.counters.insert(name, *value);
    }
    for (name, value) in &snap.gauges {
        data.gauges.insert(name, *value);
    }
    for (name, h) in &snap.histograms {
        data.hists.insert(name, h.clone());
    }
    render_summary(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(2.5), "2.5");
    }

    #[test]
    fn ns_to_us_keeps_three_decimals() {
        assert_eq!(ns_to_us(0), "0.000");
        assert_eq!(ns_to_us(1_500), "1.500");
        assert_eq!(ns_to_us(123_456_789), "123456.789");
    }

    #[test]
    fn summary_includes_all_three_percentiles() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 400, 800, 1600] {
            h.record(v);
        }
        let mut data = SummaryData::default();
        data.hists.insert("x.ns", h);
        let table = render_summary(&data);
        assert!(table.contains("p50") && table.contains("p95") && table.contains("p99"));
    }
}
