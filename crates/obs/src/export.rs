//! Exporters: JSONL journal lines, the Chrome `trace_event` file,
//! and the human-readable per-stage summary table.
//!
//! Everything here is hand-rolled string assembly — the obs crate
//! takes no dependencies, and both formats are simple enough that a
//! serializer would be more code than the escaping below. The JSONL
//! schema is stable and covered by golden-file tests:
//!
//! ```text
//! {"type":"span","name":"engine.launch","tid":0,"ts_ns":120,"dur_ns":480,"args":{"kernel":"k0"}}
//! {"type":"instant","name":"engine.attach","tid":0,"ts_ns":0}
//! {"type":"warn","tid":0,"ts_ns":90,"msg":"..."}
//! {"type":"counter","name":"executor.trace_records","value":4096}
//! {"type":"gauge","name":"engine.overhead_ratio","value":3.25}
//! {"type":"hist","name":"par.task_ns","count":8,"sum":1024,"min":96,"max":256,"p50":127,"p99":255}
//! ```

use crate::registry::{ArgVal, Event, EventKind, Snapshot};
use std::fmt::Write as _;

/// Escape `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    // JSON has no NaN/Infinity; export them as null so consumers
    // (and our own verifier) never see invalid syntax.
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn fmt_arg(value: &ArgVal) -> String {
    match value {
        ArgVal::U64(v) => format!("{v}"),
        ArgVal::I64(v) => format!("{v}"),
        ArgVal::F64(v) => fmt_f64(*v),
        ArgVal::Str(v) => format!("\"{}\"", json_escape(v)),
        ArgVal::Bool(v) => format!("{v}"),
    }
}

fn fmt_args(args: &[(&'static str, ArgVal)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", json_escape(k), fmt_arg(v));
    }
    out.push('}');
    out
}

/// Render one event as a JSONL line (newline-terminated). This is
/// also what the registry streams to the journal as events happen.
pub fn event_jsonl_line(event: &Event) -> String {
    let mut line = String::with_capacity(96);
    match &event.kind {
        EventKind::Span { dur_ns } => {
            let _ = write!(
                line,
                "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"ts_ns\":{},\"dur_ns\":{}",
                json_escape(event.name),
                event.tid,
                event.ts_ns,
                dur_ns
            );
        }
        EventKind::Instant => {
            let _ = write!(
                line,
                "{{\"type\":\"instant\",\"name\":\"{}\",\"tid\":{},\"ts_ns\":{}",
                json_escape(event.name),
                event.tid,
                event.ts_ns
            );
        }
        EventKind::Warn { msg } => {
            let _ = write!(
                line,
                "{{\"type\":\"warn\",\"tid\":{},\"ts_ns\":{},\"msg\":\"{}\"",
                event.tid,
                event.ts_ns,
                json_escape(msg)
            );
        }
    }
    if !event.args.is_empty() {
        let _ = write!(line, ",\"args\":{}", fmt_args(&event.args));
    }
    line.push_str("}\n");
    line
}

/// Render the counter/gauge/histogram totals as JSONL lines —
/// appended to the journal when artifacts are written, so the journal
/// ends with a self-contained summary of the run.
pub fn totals_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            value
        );
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            json_escape(name),
            fmt_f64(*value)
        );
    }
    for (name, h) in &snap.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{}}}",
            json_escape(name),
            h.count,
            h.sum,
            if h.count == 0 { 0 } else { h.min },
            h.max,
            h.quantile(0.5),
            h.quantile(0.99)
        );
    }
    if snap.dropped_events > 0 {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"obs.dropped_events\",\"value\":{}}}",
            snap.dropped_events
        );
    }
    out
}

/// Render the whole journal (events then totals) as one JSONL string.
/// Used by tests and `write_artifacts` for private registries; the
/// process-wide registry streams event lines as they happen instead.
pub fn jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    for event in &snap.events {
        out.push_str(&event_jsonl_line(event));
    }
    out.push_str(&totals_jsonl(snap));
    out
}

/// Microseconds with three decimals — Chrome's `ts`/`dur` unit.
fn ns_to_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render the snapshot as a Chrome `trace_event` JSON document that
/// loads in `about:tracing` and Perfetto. Spans become complete
/// (`"ph":"X"`) events; instants become `"ph":"i"`; warnings become
/// instants named after the message; counters become one `"ph":"C"`
/// sample at the end of the trace.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    let mut last_ts = 0u64;
    for e in &snap.events {
        last_ts = last_ts.max(e.ts_ns);
        let entry = match &e.kind {
            EventKind::Span { dur_ns } => {
                last_ts = last_ts.max(e.ts_ns + dur_ns);
                format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"cat\":\"gtpin\",\"name\":\"{}\",\"args\":{}}}",
                    e.tid,
                    ns_to_us(e.ts_ns),
                    ns_to_us(*dur_ns),
                    json_escape(e.name),
                    fmt_args(&e.args)
                )
            }
            EventKind::Instant => format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"gtpin\",\"name\":\"{}\",\"args\":{}}}",
                e.tid,
                ns_to_us(e.ts_ns),
                json_escape(e.name),
                fmt_args(&e.args)
            ),
            EventKind::Warn { msg } => format!(
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"cat\":\"warn\",\"name\":\"{}\",\"args\":{{}}}}",
                e.tid,
                ns_to_us(e.ts_ns),
                json_escape(msg)
            ),
        };
        push(entry, &mut out, &mut first);
    }
    for (name, value) in &snap.counters {
        let entry = format!(
            "{{\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{},\"name\":\"{}\",\"args\":{{\"value\":{}}}}}",
            ns_to_us(last_ts),
            json_escape(name),
            value
        );
        push(entry, &mut out, &mut first);
    }
    out.push_str("]}");
    out
}

/// Render the human-readable per-stage summary: span rollups first
/// (count, total, mean per name), then counters, gauges, histograms.
pub fn summary(snap: &Snapshot) -> String {
    use std::collections::BTreeMap;
    let mut spans: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    let mut warns = 0u64;
    for e in &snap.events {
        match &e.kind {
            EventKind::Span { dur_ns } => {
                let entry = spans.entry(e.name).or_insert((0, 0));
                entry.0 += 1;
                entry.1 += dur_ns;
            }
            EventKind::Warn { .. } => warns += 1,
            EventKind::Instant => {}
        }
    }
    let mut out = String::new();
    if !spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<34} {:>8} {:>14} {:>14}",
            "span", "count", "total_ms", "mean_us"
        );
        for (name, (count, total_ns)) in &spans {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>14.3} {:>14.1}",
                name,
                count,
                *total_ns as f64 / 1e6,
                *total_ns as f64 / 1e3 / *count as f64
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\n{:<34} {:>14}", "counter", "value");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "{:<34} {:>14}", name, value);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\n{:<34} {:>14}", "gauge", "value");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "{:<34} {:>14.4}", name, value);
        }
    }
    if !snap.histograms.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<34} {:>8} {:>10} {:>10} {:>10}",
            "histogram(ns)", "count", "mean", "p50", "p99"
        );
        for (name, h) in &snap.histograms {
            let _ = writeln!(
                out,
                "{:<34} {:>8} {:>10.0} {:>10} {:>10}",
                name,
                h.count,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
    }
    if warns > 0 {
        let _ = writeln!(out, "\n{warns} warning(s) in journal");
    }
    if snap.dropped_events > 0 {
        let _ = writeln!(
            out,
            "{} event(s) dropped past buffer cap",
            snap.dropped_events
        );
    }
    if out.is_empty() {
        out.push_str("no telemetry recorded\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslashes_and_controls() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_export_as_null() {
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        assert_eq!(fmt_f64(2.5), "2.5");
    }

    #[test]
    fn ns_to_us_keeps_three_decimals() {
        assert_eq!(ns_to_us(0), "0.000");
        assert_eq!(ns_to_us(1_500), "1.500");
        assert_eq!(ns_to_us(123_456_789), "123456.789");
    }
}
