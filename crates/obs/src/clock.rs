//! Time sources for the telemetry registry.
//!
//! Production uses a monotonic clock anchored at registry creation;
//! tests inject a [`ManualClock`] so every recorded timestamp — and
//! therefore every exported artifact — is deterministic down to the
//! byte (the golden-file exporter tests depend on this).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin. Must never decrease.
    fn now_ns(&self) -> u64;
}

/// Wall clock: `Instant` deltas from the moment of construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose zero is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> MonotonicClock {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        // u64 nanoseconds cover ~584 years of process uptime.
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-cranked clock for deterministic tests: reads return the
/// last value set, and [`ManualClock::advance`] moves time forward.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at t = 0.
    pub fn new() -> ManualClock {
        ManualClock::default()
    }

    /// Move time forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        self.ns.fetch_add(delta_ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

/// Shared clocks: tests hand the registry an `Arc<ManualClock>` and
/// keep a second handle to crank time forward.
impl<T: Clock + ?Sized> Clock for std::sync::Arc<T> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_explicit() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(1_500);
        assert_eq!(c.now_ns(), 1_500);
        c.advance(500);
        assert_eq!(c.now_ns(), 2_000);
    }
}
