//! Zero-copy reader for the GTOBS01 binary journal, plus the
//! converters that derive the text artifacts from it.
//!
//! [`scan`] walks a byte slice without copying payloads: sections are
//! borrowed subslices, strings are `&str` views into the string-table
//! blobs, and records decode on the fly from their fixed 40-byte
//! cells — no per-record allocation. The scan is lenient: damaged
//! regions are skipped by resynchronizing on the next stream header,
//! and a torn tail is measured so [`recover`] can truncate it (the
//! same contract as `gtpin-durable`). [`verify`] is the strict form:
//! the first anomaly — bad magic, unknown version, checksum mismatch,
//! malformed section — becomes an [`ObsError`].
//!
//! The JSONL and Chrome `trace_event` exporters live on top of this
//! reader ([`to_jsonl`], [`to_chrome_trace`]): the text forms are
//! *converted* from the binary journal, not written alongside it, so
//! they can never disagree with what was recorded. [`timeline`]
//! aggregates the simulator's per-EU provenance events into a
//! deterministic utilization report (see `gtpin obs-timeline`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use crate::binary::{
    pad_to_align, RawRecord, ARG_BOOL, ARG_F64, ARG_I64, ARG_STR, FLAG_SYNTHETIC, HEADER_LEN,
    MAGIC, RECORD_LEN, REC_ARG, REC_COUNTER, REC_GAUGE, REC_HIST_BUCKET, REC_HIST_SUMMARY,
    REC_INSTANT, REC_SPAN_EXIT, REC_WARN, SECTION_HEADER_LEN, SECT_EVENTS, SECT_STRINGS,
    SECT_TOTALS, VERSION,
};
use crate::export;
use crate::frame::fnv64;
use crate::registry::Histogram;

/// What can go wrong reading a binary journal.
#[derive(Debug)]
pub enum ObsError {
    /// The journal file could not be read or written.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The bytes at `offset` are not a GTOBS01 stream header where
    /// one was required.
    BadMagic {
        /// Byte offset of the failure.
        offset: usize,
    },
    /// A stream header declares a version this reader does not know.
    BadVersion {
        /// Byte offset of the header.
        offset: usize,
        /// The declared version.
        found: u32,
    },
    /// A checksum did not match its bytes.
    BadCrc {
        /// Byte offset of the failing structure.
        offset: usize,
        /// Which structure failed (`"stream header"` / `"section"`).
        what: &'static str,
    },
    /// A structurally invalid section.
    Malformed {
        /// Byte offset of the section header.
        offset: usize,
        /// Why it is invalid.
        reason: String,
    },
    /// The journal ends mid-structure (a torn tail).
    TornTail {
        /// Offset where the intact prefix ends.
        offset: usize,
        /// Bytes of torn data after it.
        bytes: usize,
    },
    /// The journal holds no records at all.
    Empty,
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Io { path, source } => {
                write!(f, "obs journal {}: {}", path.display(), source)
            }
            ObsError::BadMagic { offset } => {
                write!(f, "not a GTOBS01 journal (bad magic at byte {offset})")
            }
            ObsError::BadVersion { offset, found } => write!(
                f,
                "unsupported GTOBS journal version {found} at byte {offset} (reader supports {VERSION})"
            ),
            ObsError::BadCrc { offset, what } => {
                write!(f, "checksum mismatch in {what} at byte {offset}")
            }
            ObsError::Malformed { offset, reason } => {
                write!(f, "malformed section at byte {offset}: {reason}")
            }
            ObsError::TornTail { offset, bytes } => write!(
                f,
                "torn tail: {bytes} trailing byte(s) after intact prefix of {offset}"
            ),
            ObsError::Empty => write!(f, "journal holds no records"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One section, borrowed from the journal bytes.
#[derive(Debug)]
pub struct Section<'a> {
    /// `SECT_EVENTS` or `SECT_TOTALS` (string sections are folded
    /// into [`Stream::strings`] during the scan).
    pub kind: u32,
    /// The checksummed payload: an array of 40-byte records.
    pub payload: &'a [u8],
}

impl<'a> Section<'a> {
    /// Number of records in this section.
    pub fn record_count(&self) -> usize {
        self.payload.len() / RECORD_LEN
    }

    /// Decode record `i`.
    pub fn record(&self, i: usize) -> RawRecord {
        RawRecord::decode(&self.payload[i * RECORD_LEN..(i + 1) * RECORD_LEN])
    }
}

/// One stream (one writing process) of the journal.
#[derive(Debug, Default)]
pub struct Stream<'a> {
    /// The accumulated string table: index is the interned id.
    pub strings: Vec<&'a str>,
    /// Record sections in file order.
    pub sections: Vec<Section<'a>>,
}

impl<'a> Stream<'a> {
    /// Resolve an interned string id ("" when out of range, which
    /// only happens in damaged journals).
    pub fn string(&self, id: u32) -> &'a str {
        self.strings.get(id as usize).copied().unwrap_or("")
    }
}

/// The parse of a whole journal file.
#[derive(Debug, Default)]
pub struct Journal<'a> {
    /// Streams in file order.
    pub streams: Vec<Stream<'a>>,
    /// Mid-file bytes skipped while resynchronizing past damage.
    pub skipped_bytes: usize,
    /// Trailing bytes that could not be parsed (truncation target).
    pub torn_tail_bytes: usize,
}

impl Journal<'_> {
    /// Total records across all streams and sections.
    pub fn record_count(&self) -> usize {
        self.streams
            .iter()
            .flat_map(|s| s.sections.iter())
            .map(|s| s.record_count())
            .sum()
    }

    /// Total interned strings across all streams.
    pub fn string_count(&self) -> usize {
        self.streams.iter().map(|s| s.strings.len()).sum()
    }

    /// Total record sections across all streams.
    pub fn section_count(&self) -> usize {
        self.streams.iter().map(|s| s.sections.len()).sum()
    }
}

/// Lenient parse: returns whatever is intact, measuring damage
/// instead of failing on it.
pub fn scan(bytes: &[u8]) -> Journal<'_> {
    scan_inner(bytes).0
}

fn looks_like_header(bytes: &[u8], pos: usize) -> bool {
    pos + HEADER_LEN <= bytes.len()
        && bytes[pos..pos + 8] == MAGIC
        && fnv64(&bytes[pos..pos + 16])
            == u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().expect("8 bytes"))
}

fn scan_inner(bytes: &[u8]) -> (Journal<'_>, Option<ObsError>) {
    let mut journal = Journal::default();
    let mut anomaly: Option<ObsError> = None;
    fn note(slot: &mut Option<ObsError>, e: ObsError) {
        if slot.is_none() {
            *slot = Some(e);
        }
    }
    let mut pos = 0usize;
    'walk: while pos < bytes.len() {
        let rem = bytes.len() - pos;
        // Classify the 64-byte block at `pos`; on damage fall through
        // to the resync loop below.
        let failure: ObsError = 'block: {
            if rem < HEADER_LEN {
                break 'block ObsError::TornTail {
                    offset: pos,
                    bytes: rem,
                };
            }
            if bytes[pos..pos + 8] == MAGIC {
                let version =
                    u32::from_le_bytes(bytes[pos + 8..pos + 12].try_into().expect("4 bytes"));
                let crc =
                    u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().expect("8 bytes"));
                if fnv64(&bytes[pos..pos + 16]) != crc {
                    break 'block ObsError::BadCrc {
                        offset: pos,
                        what: "stream header",
                    };
                }
                if version != VERSION {
                    break 'block ObsError::BadVersion {
                        offset: pos,
                        found: version,
                    };
                }
                journal.streams.push(Stream::default());
                pos += HEADER_LEN;
                continue 'walk;
            }
            if journal.streams.is_empty() {
                // Zero padding before the first header (an aligned
                // restart after a torn predecessor) is not an error.
                if bytes[pos..pos + HEADER_LEN].iter().all(|&b| b == 0) {
                    pos += HEADER_LEN;
                    continue 'walk;
                }
                break 'block ObsError::BadMagic { offset: pos };
            }
            let kind = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let pad =
                u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let plen = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().expect("8 bytes"));
            let crc = u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().expect("8 bytes"));
            if !(SECT_STRINGS..=SECT_TOTALS).contains(&kind) {
                break 'block ObsError::Malformed {
                    offset: pos,
                    reason: format!("unknown section kind {kind}"),
                };
            }
            if plen > (rem - SECTION_HEADER_LEN) as u64 {
                break 'block ObsError::TornTail {
                    offset: pos,
                    bytes: rem,
                };
            }
            let plen = plen as usize;
            if pad != pad_to_align(plen) {
                break 'block ObsError::Malformed {
                    offset: pos,
                    reason: format!("padding {pad} does not realign payload of {plen}"),
                };
            }
            if SECTION_HEADER_LEN + plen + pad > rem {
                break 'block ObsError::TornTail {
                    offset: pos,
                    bytes: rem,
                };
            }
            let payload = &bytes[pos + SECTION_HEADER_LEN..pos + SECTION_HEADER_LEN + plen];
            if fnv64(payload) != crc {
                break 'block ObsError::BadCrc {
                    offset: pos,
                    what: "section",
                };
            }
            let stream = journal.streams.last_mut().expect("checked non-empty");
            match kind {
                SECT_STRINGS => {
                    if let Err(reason) = parse_strings(payload, &mut stream.strings) {
                        break 'block ObsError::Malformed {
                            offset: pos,
                            reason,
                        };
                    }
                }
                _ => {
                    if !plen.is_multiple_of(RECORD_LEN) {
                        break 'block ObsError::Malformed {
                            offset: pos,
                            reason: format!("payload of {plen} is not whole records"),
                        };
                    }
                    stream.sections.push(Section { kind, payload });
                }
            }
            pos += SECTION_HEADER_LEN + plen + pad;
            continue 'walk;
        };
        note(&mut anomaly, failure);
        // Resynchronize: look for the next intact stream header; if
        // none, everything from `pos` is the torn tail.
        let mut next = pos + HEADER_LEN;
        let resumed = loop {
            if next + HEADER_LEN > bytes.len() {
                break None;
            }
            if looks_like_header(bytes, next) {
                break Some(next);
            }
            next += HEADER_LEN;
        };
        match resumed {
            Some(p) => {
                journal.skipped_bytes += p - pos;
                pos = p;
            }
            None => {
                journal.torn_tail_bytes = bytes.len() - pos;
                break;
            }
        }
    }
    (journal, anomaly)
}

fn parse_strings<'a>(payload: &'a [u8], strings: &mut Vec<&'a str>) -> Result<(), String> {
    if payload.len() < 8 {
        return Err("string delta shorter than its fixed header".into());
    }
    let first_id = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    let count = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
    let table_end = 8 + 4 * (count + 1);
    if payload.len() < table_end {
        return Err(format!(
            "offset table for {count} string(s) overruns the delta"
        ));
    }
    if first_id != strings.len() {
        return Err(format!(
            "string delta starts at id {first_id} but table holds {}",
            strings.len()
        ));
    }
    let blob = &payload[table_end..];
    let off = |i: usize| {
        u32::from_le_bytes(payload[8 + 4 * i..12 + 4 * i].try_into().expect("4 bytes")) as usize
    };
    if off(count) != blob.len() {
        return Err("sentinel offset does not match blob length".into());
    }
    for i in 0..count {
        let (start, end) = (off(i), off(i + 1));
        if start > end || end > blob.len() {
            return Err(format!("string {i} has inverted or overrunning offsets"));
        }
        let s = std::str::from_utf8(&blob[start..end])
            .map_err(|_| format!("string {i} is not UTF-8"))?;
        strings.push(s);
    }
    Ok(())
}

/// A strict verification summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// Total journal bytes.
    pub bytes: usize,
    /// Streams (one per writing process).
    pub streams: usize,
    /// Record sections.
    pub sections: usize,
    /// Records.
    pub records: usize,
    /// Interned strings.
    pub strings: usize,
}

/// Strict parse: the first anomaly (bad magic, unknown version, CRC
/// mismatch, malformed or torn section) is an error, and a journal
/// with no records at all is [`ObsError::Empty`].
pub fn verify(bytes: &[u8]) -> Result<VerifyReport, ObsError> {
    let (journal, anomaly) = scan_inner(bytes);
    if let Some(e) = anomaly {
        return Err(e);
    }
    let records = journal.record_count();
    if records == 0 {
        return Err(ObsError::Empty);
    }
    Ok(VerifyReport {
        bytes: bytes.len(),
        streams: journal.streams.len(),
        sections: journal.section_count(),
        records,
        strings: journal.string_count(),
    })
}

/// What [`recover`] did to a journal file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Bytes kept.
    pub valid_bytes: u64,
    /// Torn trailing bytes physically truncated.
    pub truncated_bytes: u64,
    /// Mid-file damaged bytes skipped (not repairable by truncation).
    pub skipped_bytes: u64,
    /// Streams in the surviving journal.
    pub streams: usize,
    /// Records in the surviving journal.
    pub records: usize,
}

/// Read `path` for conversion, wrapping IO failures.
pub fn read_journal(path: &Path) -> Result<Vec<u8>, ObsError> {
    std::fs::read(path).map_err(|source| ObsError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Truncate the torn tail of a journal file, like
/// `gtpin-durable`'s repair: after recovery the file re-verifies
/// clean (modulo mid-file damage, which truncation cannot fix and is
/// reported instead).
pub fn recover(path: &Path) -> Result<Recovery, ObsError> {
    let bytes = read_journal(path)?;
    let journal = scan(&bytes);
    let keep = (bytes.len() - journal.torn_tail_bytes) as u64;
    if journal.torn_tail_bytes > 0 {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|source| ObsError::Io {
                path: path.to_path_buf(),
                source,
            })?;
        file.set_len(keep).map_err(|source| ObsError::Io {
            path: path.to_path_buf(),
            source,
        })?;
    }
    Ok(Recovery {
        valid_bytes: keep,
        truncated_bytes: journal.torn_tail_bytes as u64,
        skipped_bytes: journal.skipped_bytes as u64,
        streams: journal.streams.len(),
        records: journal.record_count(),
    })
}

fn decode_arg<'a>(rec: &RawRecord, stream: &Stream<'a>) -> (&'a str, export::ArgRef<'a>) {
    let value = match rec.flags {
        ARG_I64 => export::ArgRef::I64(rec.w[0] as i64),
        ARG_F64 => export::ArgRef::F64(f64::from_bits(rec.w[0])),
        ARG_STR => export::ArgRef::Str(stream.string(rec.w[0] as u32)),
        ARG_BOOL => export::ArgRef::Bool(rec.w[0] != 0),
        _ => export::ArgRef::U64(rec.w[0]),
    };
    (stream.string(rec.name), value)
}

/// Walk the event groups of an events section: for each non-arg
/// record, hand the callback the record and its decoded arguments.
fn for_each_event<'a>(
    section: &Section<'a>,
    stream: &Stream<'a>,
    mut f: impl FnMut(&RawRecord, &[(&'a str, export::ArgRef<'a>)]),
) {
    let n = section.record_count();
    let mut args: Vec<(&str, export::ArgRef)> = Vec::new();
    let mut i = 0;
    while i < n {
        let rec = section.record(i);
        let argc = match rec.kind {
            REC_SPAN_EXIT | REC_INSTANT | REC_WARN => (rec.w[2] as usize).min(n - i - 1),
            _ => 0,
        };
        args.clear();
        for k in 0..argc {
            let a = section.record(i + 1 + k);
            if a.kind == REC_ARG {
                args.push(decode_arg(&a, stream));
            }
        }
        f(&rec, &args);
        i += 1 + argc;
    }
}

fn hist_from_records(section: &Section<'_>, summary_idx: usize) -> (Histogram, usize) {
    let rec = section.record(summary_idx);
    let mut h = Histogram {
        buckets: [0; 41],
        count: rec.w[0],
        sum: rec.w[1],
        min: rec.w[2],
        max: rec.w[3],
    };
    let mut i = summary_idx + 1;
    while i < section.record_count() {
        let b = section.record(i);
        if b.kind != REC_HIST_BUCKET || b.name != rec.name {
            break;
        }
        if let Some(slot) = h.buckets.get_mut(b.w[0] as usize) {
            *slot = b.w[1];
        }
        i += 1;
    }
    (h, i)
}

/// Convert a binary journal to the JSONL text form — byte-identical
/// to what the legacy direct JSONL writer produced for the same
/// events and totals (golden-file and proptest covered).
pub fn to_jsonl(bytes: &[u8]) -> String {
    let journal = scan(bytes);
    let mut out = String::new();
    for stream in &journal.streams {
        for section in &stream.sections {
            match section.kind {
                SECT_EVENTS => for_each_event(section, stream, |rec, args| {
                    let args = export::fmt_args_opt(args);
                    match rec.kind {
                        REC_SPAN_EXIT => out.push_str(&export::jsonl_span(
                            stream.string(rec.name),
                            rec.tid as u32,
                            rec.w[0],
                            rec.w[1],
                            args.as_deref(),
                        )),
                        REC_INSTANT => out.push_str(&export::jsonl_instant(
                            stream.string(rec.name),
                            rec.tid as u32,
                            rec.w[0],
                            args.as_deref(),
                        )),
                        REC_WARN => out.push_str(&export::jsonl_warn(
                            rec.tid as u32,
                            rec.w[0],
                            stream.string(rec.name),
                            args.as_deref(),
                        )),
                        // Span-enter records have no legacy JSONL
                        // equivalent; the exit line carries the span.
                        _ => {}
                    }
                }),
                SECT_TOTALS => {
                    let mut i = 0;
                    while i < section.record_count() {
                        let rec = section.record(i);
                        match rec.kind {
                            REC_COUNTER => {
                                out.push_str(&export::jsonl_counter(
                                    stream.string(rec.name),
                                    rec.w[0],
                                ));
                                i += 1;
                            }
                            REC_GAUGE => {
                                out.push_str(&export::jsonl_gauge(
                                    stream.string(rec.name),
                                    f64::from_bits(rec.w[0]),
                                ));
                                i += 1;
                            }
                            REC_HIST_SUMMARY => {
                                let (h, next) = hist_from_records(section, i);
                                out.push_str(&export::jsonl_hist(stream.string(rec.name), &h));
                                i = next;
                            }
                            _ => i += 1,
                        }
                    }
                }
                _ => {}
            }
        }
    }
    out
}

/// Convert a binary journal to the Chrome `trace_event` form. Spans
/// and instants come from the event sections; the counter samples at
/// the end come from the journal's final totals section (skipping
/// synthetic totals, which the legacy exporter never emitted there).
pub fn to_chrome_trace(bytes: &[u8]) -> String {
    let journal = scan(bytes);
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |s: String, out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&s);
    };
    let mut last_ts = 0u64;
    let mut last_totals: Option<(&Stream<'_>, &Section<'_>)> = None;
    for stream in &journal.streams {
        for section in &stream.sections {
            match section.kind {
                SECT_EVENTS => for_each_event(section, stream, |rec, args| {
                    last_ts = last_ts.max(rec.w[0]);
                    match rec.kind {
                        REC_SPAN_EXIT => {
                            last_ts = last_ts.max(rec.w[0] + rec.w[1]);
                            push(
                                export::chrome_span(
                                    rec.tid as u32,
                                    rec.w[0],
                                    rec.w[1],
                                    stream.string(rec.name),
                                    args,
                                ),
                                &mut out,
                            );
                        }
                        REC_INSTANT => push(
                            export::chrome_instant(
                                rec.tid as u32,
                                rec.w[0],
                                stream.string(rec.name),
                                args,
                            ),
                            &mut out,
                        ),
                        REC_WARN => push(
                            export::chrome_warn(rec.tid as u32, rec.w[0], stream.string(rec.name)),
                            &mut out,
                        ),
                        _ => {}
                    }
                }),
                SECT_TOTALS => last_totals = Some((stream, section)),
                _ => {}
            }
        }
    }
    if let Some((stream, section)) = last_totals {
        for i in 0..section.record_count() {
            let rec = section.record(i);
            if rec.kind == REC_COUNTER && rec.flags & FLAG_SYNTHETIC == 0 {
                push(
                    export::chrome_counter(last_ts, stream.string(rec.name), rec.w[0]),
                    &mut out,
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Render the per-stage summary (the `gtpin obs-report` table) from a
/// binary journal: span rollups from the event sections, aggregate
/// totals from the journal's final totals section.
pub fn summarize(bytes: &[u8]) -> String {
    let journal = scan(bytes);
    let mut data = export::SummaryData::default();
    let mut last_totals: Option<(&Stream<'_>, &Section<'_>)> = None;
    for stream in &journal.streams {
        for section in &stream.sections {
            match section.kind {
                SECT_EVENTS => for_each_event(section, stream, |rec, _args| match rec.kind {
                    REC_SPAN_EXIT => {
                        let entry = data.spans.entry(stream.string(rec.name)).or_insert((0, 0));
                        entry.0 += 1;
                        entry.1 += rec.w[1];
                    }
                    REC_WARN => data.warns += 1,
                    _ => {}
                }),
                SECT_TOTALS => last_totals = Some((stream, section)),
                _ => {}
            }
        }
    }
    if let Some((stream, section)) = last_totals {
        let mut i = 0;
        while i < section.record_count() {
            let rec = section.record(i);
            match rec.kind {
                REC_COUNTER if rec.flags & FLAG_SYNTHETIC != 0 => {
                    data.dropped = rec.w[0];
                    i += 1;
                }
                REC_COUNTER => {
                    data.counters.insert(stream.string(rec.name), rec.w[0]);
                    i += 1;
                }
                REC_GAUGE => {
                    data.gauges
                        .insert(stream.string(rec.name), f64::from_bits(rec.w[0]));
                    i += 1;
                }
                REC_HIST_SUMMARY => {
                    let (h, next) = hist_from_records(section, i);
                    data.hists.insert(stream.string(rec.name), h);
                    i = next;
                }
                _ => i += 1,
            }
        }
    }
    export::render_summary(&data)
}

/// Per-EU utilization over the whole journal, summed across epochs
/// and launches. All fields derive from virtual-cycle provenance
/// events, so the report is bit-identical at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EuRow {
    /// EU index.
    pub eu: u64,
    /// Epoch records aggregated into this row.
    pub epochs: u64,
    /// Cycles the EU issued an instruction.
    pub busy: u64,
    /// Virtual cycles the EU was simulated.
    pub cycles: u64,
}

/// Per-epoch utilization across EUs (summed across launches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpochRow {
    /// Epoch index within its launch.
    pub epoch: u64,
    /// EU-epoch records aggregated into this row.
    pub active_eus: u64,
    /// Busy cycles summed over the epoch's EUs.
    pub busy: u64,
    /// Virtual cycles summed over the epoch's EUs.
    pub cycles: u64,
}

/// Wall-clock barrier-wait telemetry from the parallel simulator.
/// Nondeterministic by nature — `gtpin obs-timeline` prints it to
/// stderr only, keeping stdout diffable across worker counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Barrier waits recorded.
    pub waits: u64,
    /// Distinct workers that recorded one.
    pub workers: u64,
    /// Total nanoseconds spent waiting.
    pub total_ns: u64,
    /// Longest single wait.
    pub max_ns: u64,
}

/// The aggregated `gtpin obs-timeline` report.
#[derive(Debug, Default)]
pub struct Timeline {
    /// Streams in the journal.
    pub streams: usize,
    /// Kernel launches simulated (distinct launch ids seen).
    pub launches: u64,
    /// Per-EU rollup, sorted by EU index.
    pub per_eu: Vec<EuRow>,
    /// Per-epoch rollup, sorted by epoch index.
    pub per_epoch: Vec<EpochRow>,
    /// Wall-clock barrier waits (stderr-only material).
    pub barrier: BarrierStats,
}

/// Aggregate the simulator's `sim.eu_epoch` / `sim.barrier`
/// provenance instants into a deterministic timeline report.
pub fn timeline(bytes: &[u8]) -> Timeline {
    let journal = scan(bytes);
    let mut eus: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    let mut epochs: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
    let mut launches: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut workers: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
    let mut barrier = BarrierStats::default();
    for stream in &journal.streams {
        for section in stream.sections.iter().filter(|s| s.kind == SECT_EVENTS) {
            for_each_event(section, stream, |rec, args| {
                if rec.kind != REC_INSTANT {
                    return;
                }
                let arg = |key: &str| {
                    args.iter().find(|(k, _)| *k == key).map(|(_, v)| match v {
                        export::ArgRef::U64(v) => *v,
                        export::ArgRef::I64(v) => *v as u64,
                        _ => 0,
                    })
                };
                match stream.string(rec.name) {
                    "sim.eu_epoch" => {
                        let eu = arg("eu").unwrap_or(0);
                        let epoch = arg("epoch").unwrap_or(0);
                        let busy = arg("busy").unwrap_or(0);
                        let cycles = arg("cycles").unwrap_or(0);
                        if let Some(launch) = arg("launch") {
                            launches.insert(launch);
                        }
                        let e = eus.entry(eu).or_insert((0, 0, 0));
                        e.0 += 1;
                        e.1 += busy;
                        e.2 += cycles;
                        let p = epochs.entry(epoch).or_insert((0, 0, 0));
                        p.0 += 1;
                        p.1 += busy;
                        p.2 += cycles;
                    }
                    "sim.barrier" => {
                        let wait = arg("wait_ns").unwrap_or(0);
                        if let Some(w) = arg("worker") {
                            workers.insert(w);
                        }
                        barrier.waits += 1;
                        barrier.total_ns += wait;
                        barrier.max_ns = barrier.max_ns.max(wait);
                    }
                    _ => {}
                }
            });
        }
    }
    barrier.workers = workers.len() as u64;
    Timeline {
        streams: journal.streams.len(),
        launches: launches.len() as u64,
        per_eu: eus
            .into_iter()
            .map(|(eu, (epochs, busy, cycles))| EuRow {
                eu,
                epochs,
                busy,
                cycles,
            })
            .collect(),
        per_epoch: epochs
            .into_iter()
            .map(|(epoch, (active_eus, busy, cycles))| EpochRow {
                epoch,
                active_eus,
                busy,
                cycles,
            })
            .collect(),
        barrier,
    }
}

/// Render the deterministic (stdout) half of the timeline report.
pub fn render_timeline(t: &Timeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "obs-timeline: {} stream(s), {} launch(es), {} EU(s), {} epoch(s)",
        t.streams,
        t.launches,
        t.per_eu.len(),
        t.per_epoch.len()
    );
    if t.per_eu.is_empty() {
        let _ = writeln!(
            out,
            "no sim.eu_epoch provenance in journal (run the detailed simulator with GTPIN_OBS=1)"
        );
        return out;
    }
    let pct = |busy: u64, cycles: u64| {
        if cycles == 0 {
            0.0
        } else {
            busy as f64 * 100.0 / cycles as f64
        }
    };
    let _ = writeln!(
        out,
        "\n{:>4} {:>8} {:>12} {:>12} {:>7}",
        "eu", "epochs", "busy", "cycles", "util%"
    );
    let (mut tb, mut tc) = (0u64, 0u64);
    for r in &t.per_eu {
        tb += r.busy;
        tc += r.cycles;
        let _ = writeln!(
            out,
            "{:>4} {:>8} {:>12} {:>12} {:>7.2}",
            r.eu,
            r.epochs,
            r.busy,
            r.cycles,
            pct(r.busy, r.cycles)
        );
    }
    let _ = writeln!(
        out,
        "{:>4} {:>8} {:>12} {:>12} {:>7.2}",
        "all",
        t.per_eu.iter().map(|r| r.epochs).sum::<u64>(),
        tb,
        tc,
        pct(tb, tc)
    );
    let _ = writeln!(
        out,
        "\n{:>6} {:>10} {:>12} {:>12} {:>7}",
        "epoch", "active_eus", "busy", "cycles", "util%"
    );
    for r in &t.per_epoch {
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>12} {:>12} {:>7.2}",
            r.epoch,
            r.active_eus,
            r.busy,
            r.cycles,
            pct(r.busy, r.cycles)
        );
    }
    out
}
