//! The telemetry registry: spans, counters, gauges, histograms, and
//! the buffered event journal they all feed.
//!
//! One [`Registry`] is process-wide (see [`crate::global`]); tests
//! construct private instances with an injected [`Clock`] so recorded
//! timestamps are deterministic. A disabled registry records nothing
//! and never reads the clock — every recording call is a branch on
//! one bool and an immediate return.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::thread::ThreadId;

use crate::binary::BinaryWriter;
use crate::clock::{Clock, MonotonicClock};
use crate::export;
use crate::reader;

/// Cap on buffered events; past it, events are dropped and counted
/// (the binary journal, when present, still receives every event).
pub const MAX_BUFFERED_EVENTS: usize = 1 << 20;

/// The environment variable enabling telemetry (`1`/`true`/`yes`/`on`).
pub const OBS_ENV: &str = "GTPIN_OBS";

/// The environment variable choosing the artifact directory
/// (default: `target/obs`, relative to the working directory).
pub const OBS_DIR_ENV: &str = "GTPIN_OBS_DIR";

/// A typed argument value attached to an event.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (non-finite values export as `null`).
    F64(f64),
    /// Text.
    Str(String),
    /// Boolean.
    Bool(bool),
}

/// What kind of event was recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A completed scoped span.
    Span {
        /// Wall-clock duration, nanoseconds.
        dur_ns: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A diagnostic that would historically have gone to stderr.
    Warn {
        /// The formatted message.
        msg: String,
    },
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span/marker name (empty for warnings).
    pub name: &'static str,
    /// What happened.
    pub kind: EventKind,
    /// Start timestamp, nanoseconds since registry origin.
    pub ts_ns: u64,
    /// Registry-scoped thread id (0 = first thread to record).
    pub tid: u32,
    /// Typed key/value arguments.
    pub args: Vec<(&'static str, ArgVal)>,
}

/// A fixed-bucket latency histogram: bucket `i` counts values whose
/// bit length is `i` (i.e. value in `[2^(i-1), 2^i)`), so the bucket
/// boundaries are powers of two from 1 ns to ~17 minutes.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Per-bucket counts, indexed by bit length of the value.
    pub buckets: [u64; 41],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; 41],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Record one value.
    pub fn record(&mut self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(40);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Approximate quantile: the upper bound of the bucket containing
    /// the `q`-th value (q in `[0, 1]`), clamped to the observed max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                let upper = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return upper.min(self.max).max(self.min);
            }
        }
        self.max
    }
}

/// An immutable copy of everything a registry has gathered, consumed
/// by the exporters ([`export::jsonl`], [`export::chrome_trace`]).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Buffered events, in recording (span-end) order.
    pub events: Vec<Event>,
    /// Events dropped past [`MAX_BUFFERED_EVENTS`].
    pub dropped_events: u64,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

#[derive(Default)]
struct Inner {
    events: Vec<Event>,
    dropped_events: u64,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    tids: Vec<ThreadId>,
}

impl Inner {
    fn tid(&mut self, id: ThreadId) -> u32 {
        if let Some(i) = self.tids.iter().position(|&t| t == id) {
            return i as u32;
        }
        self.tids.push(id);
        (self.tids.len() - 1) as u32
    }
}

/// The telemetry registry. See the crate docs for the data model and
/// the module docs for the concurrency story.
pub struct Registry {
    enabled: bool,
    clock: Box<dyn Clock>,
    inner: Mutex<Inner>,
    /// The GTOBS01 binary journal writer (the process-wide registry
    /// opens one when enabled; plain test registries leave it `None`,
    /// and [`Registry::with_buffer_sink`] records to memory).
    binary: Option<BinaryWriter>,
    journal_path: Option<PathBuf>,
    artifact_dir: Option<PathBuf>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("journal", &self.journal_path)
            .finish()
    }
}

pub(crate) fn env_truthy(value: &str) -> bool {
    matches!(
        value.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "yes" | "on"
    )
}

impl Registry {
    /// A registry with an explicit enablement and clock; no journal
    /// stream. This is the constructor tests use.
    pub fn new(enabled: bool, clock: Box<dyn Clock>) -> Registry {
        Registry {
            enabled,
            clock,
            inner: Mutex::new(Inner::default()),
            binary: None,
            journal_path: None,
            artifact_dir: None,
        }
    }

    /// A registry recording its binary journal to an in-memory
    /// buffer — what the golden tests, proptests, and benches use to
    /// inspect GTOBS01 bytes without touching disk.
    pub fn with_buffer_sink(
        enabled: bool,
        clock: Box<dyn Clock>,
    ) -> (Registry, Arc<Mutex<Vec<u8>>>) {
        let mut reg = Registry::new(enabled, clock);
        let (writer, buf) = BinaryWriter::buffer();
        reg.binary = Some(writer);
        (reg, buf)
    }

    /// The process-wide configuration: enabled iff `GTPIN_OBS` is
    /// truthy (or `force` is set), artifacts under `GTPIN_OBS_DIR`
    /// (default `target/obs`). When enabled, the GTOBS01 binary
    /// journal (`journal.gtobs`) is opened in append mode immediately
    /// and events drain to it through per-thread ring buffers; the
    /// JSONL and Chrome trace artifacts are derived from it at
    /// [`Registry::write_artifacts`] time.
    pub fn from_env(force: bool) -> Registry {
        let enabled = force
            || std::env::var(OBS_ENV)
                .map(|v| env_truthy(&v))
                .unwrap_or(false);
        let mut reg = Registry::new(enabled, Box::new(MonotonicClock::new()));
        if !enabled {
            return reg;
        }
        let dir = std::env::var(OBS_DIR_ENV)
            .map(PathBuf::from)
            .unwrap_or_else(|_| PathBuf::from("target/obs"));
        // Telemetry must never take the program down: an unwritable
        // directory just means no journal.
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("journal.gtobs");
            if let Ok(writer) = BinaryWriter::open_file(&path) {
                reg.binary = Some(writer);
                reg.journal_path = Some(path);
            }
        }
        reg.artifact_dir = Some(dir);
        reg
    }

    /// Whether this registry records anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Current time, nanoseconds since the registry origin; 0 when
    /// disabled (the clock is never consulted).
    pub fn now_ns(&self) -> u64 {
        if self.enabled {
            self.clock.now_ns()
        } else {
            0
        }
    }

    /// The binary journal path, when one is open.
    pub fn journal_path(&self) -> Option<&Path> {
        self.journal_path.as_deref()
    }

    /// The artifact directory, when configured.
    pub fn artifact_dir(&self) -> Option<&Path> {
        self.artifact_dir.as_deref()
    }

    /// Open a scoped span; it records itself when dropped. Attach
    /// arguments via [`SpanGuard::arg`] before it closes.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let start_ns = self.now_ns();
        if self.enabled {
            if let Some(bin) = &self.binary {
                let tid = {
                    let mut inner = self.inner.lock().expect("obs registry poisoned");
                    inner.tid(std::thread::current().id())
                };
                bin.span_enter(name, tid, start_ns);
            }
        }
        SpanGuard {
            reg: if self.enabled { Some(self) } else { None },
            name,
            start_ns,
            args: Vec::new(),
        }
    }

    /// Add `delta` to counter `name`.
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        if !self.enabled || delta == 0 {
            return;
        }
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value`.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.gauges.insert(name, value);
    }

    /// Record `value` (conventionally nanoseconds) into histogram
    /// `name`.
    pub fn hist_record(&self, name: &'static str, value: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        inner.histograms.entry(name).or_default().record(value);
    }

    /// Record a point-in-time marker.
    pub fn instant(&self, name: &'static str, args: Vec<(&'static str, ArgVal)>) {
        if !self.enabled {
            return;
        }
        let ts_ns = self.clock.now_ns();
        self.push_event(name, EventKind::Instant, ts_ns, args);
    }

    /// Record a diagnostic message (prefer the [`crate::warn!`]
    /// macro, which formats lazily and is a no-op when disabled).
    pub fn warn(&self, msg: String) {
        if !self.enabled {
            return;
        }
        let ts_ns = self.clock.now_ns();
        self.push_event("", EventKind::Warn { msg }, ts_ns, Vec::new());
    }

    fn push_event(
        &self,
        name: &'static str,
        kind: EventKind,
        ts_ns: u64,
        args: Vec<(&'static str, ArgVal)>,
    ) {
        let event = {
            let mut inner = self.inner.lock().expect("obs registry poisoned");
            let tid = inner.tid(std::thread::current().id());
            let event = Event {
                name,
                kind,
                ts_ns,
                tid,
                args,
            };
            if inner.events.len() < MAX_BUFFERED_EVENTS {
                inner.events.push(event.clone());
            } else {
                inner.dropped_events += 1;
            }
            event
        };
        // Journal outside the inner lock: the binary writer appends
        // to this thread's own ring buffer (uncontended) and drains
        // to the sink in section-sized batches.
        if let Some(bin) = &self.binary {
            bin.append_event(&event);
        }
    }

    /// Copy out everything gathered so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.inner.lock().expect("obs registry poisoned");
        Snapshot {
            events: inner.events.clone(),
            dropped_events: inner.dropped_events,
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
        }
    }

    /// Render the per-stage summary table (see [`export::summary`]).
    pub fn summary(&self) -> String {
        export::summary(&self.snapshot())
    }

    /// Drain every ring buffer and append the counter/gauge/histogram
    /// totals section to the binary journal (no-op without one).
    /// Telemetry stays on disk even if the process never calls
    /// [`Registry::write_artifacts`].
    pub fn flush(&self) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        match &self.binary {
            Some(bin) => bin.flush(Some(&self.snapshot())),
            None => Ok(()),
        }
    }

    /// Flush the binary journal (rings plus a totals section), then
    /// derive the text artifacts from it: `journal.jsonl` and
    /// `trace.json` under the artifact directory are *conversions* of
    /// the binary journal, so they can never disagree with it.
    /// Returns the paths written.
    pub fn write_artifacts(&self) -> std::io::Result<Vec<PathBuf>> {
        if !self.enabled {
            return Ok(Vec::new());
        }
        self.flush()?;
        let mut written = Vec::new();
        if self.binary.is_some() {
            if let Some(p) = &self.journal_path {
                written.push(p.clone());
            }
        }
        if let Some(dir) = &self.artifact_dir {
            match &self.journal_path {
                Some(journal) => {
                    let bytes = std::fs::read(journal)?;
                    let jsonl_path = dir.join("journal.jsonl");
                    std::fs::write(&jsonl_path, reader::to_jsonl(&bytes))?;
                    written.push(jsonl_path);
                    let trace_path = dir.join("trace.json");
                    std::fs::write(&trace_path, reader::to_chrome_trace(&bytes))?;
                    written.push(trace_path);
                }
                None => {
                    // No journal on disk (the directory was not
                    // writable): fall back to the snapshot exporter.
                    let trace_path = dir.join("trace.json");
                    self.write_chrome_trace(&trace_path)?;
                    written.push(trace_path);
                }
            }
        }
        Ok(written)
    }

    /// Write the Chrome `trace_event` JSON to an explicit path
    /// (used by benches that want the artifact next to their own).
    pub fn write_chrome_trace(&self, path: &Path) -> std::io::Result<()> {
        if !self.enabled {
            return Ok(());
        }
        std::fs::write(path, export::chrome_trace(&self.snapshot()))
    }
}

/// RAII guard for a scoped span: created by [`Registry::span`],
/// records a [`EventKind::Span`] event when dropped. When the
/// registry is disabled the guard holds nothing and drops for free.
pub struct SpanGuard<'a> {
    reg: Option<&'a Registry>,
    name: &'static str,
    start_ns: u64,
    args: Vec<(&'static str, ArgVal)>,
}

impl SpanGuard<'_> {
    /// Whether this guard is recording.
    pub fn active(&self) -> bool {
        self.reg.is_some()
    }

    /// Attach an argument (no-op when disabled).
    pub fn arg(&mut self, key: &'static str, value: ArgVal) {
        if self.reg.is_some() {
            self.args.push((key, value));
        }
    }

    /// Attach an unsigned-integer argument.
    pub fn arg_u64(&mut self, key: &'static str, value: u64) {
        self.arg(key, ArgVal::U64(value));
    }

    /// Attach a float argument.
    pub fn arg_f64(&mut self, key: &'static str, value: f64) {
        self.arg(key, ArgVal::F64(value));
    }

    /// Attach a text argument (the string is only built when the
    /// guard is active, so pass a closure-produced value via
    /// [`SpanGuard::active`] checks if construction is expensive).
    pub fn arg_str(&mut self, key: &'static str, value: impl Into<String>) {
        if self.reg.is_some() {
            self.args.push((key, ArgVal::Str(value.into())));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(reg) = self.reg else { return };
        let end_ns = reg.clock.now_ns();
        let dur_ns = end_ns.saturating_sub(self.start_ns);
        reg.push_event(
            self.name,
            EventKind::Span { dur_ns },
            self.start_ns,
            std::mem::take(&mut self.args),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use std::sync::Arc;

    fn manual_registry() -> (Registry, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let reg = Registry::new(true, Box::new(clock.clone()));
        (reg, clock)
    }

    #[test]
    fn spans_record_duration_and_args() {
        let (reg, clock) = manual_registry();
        {
            let mut s = reg.span("stage.a");
            clock.advance(250);
            s.arg_u64("items", 7);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.events.len(), 1);
        let e = &snap.events[0];
        assert_eq!(e.name, "stage.a");
        assert_eq!(e.ts_ns, 0);
        assert_eq!(e.kind, EventKind::Span { dur_ns: 250 });
        assert_eq!(e.args, vec![("items", ArgVal::U64(7))]);
        assert_eq!(e.tid, 0);
    }

    #[test]
    fn disabled_registry_records_nothing_and_skips_the_clock() {
        struct PanickingClock;
        impl Clock for PanickingClock {
            fn now_ns(&self) -> u64 {
                panic!("clock consulted while disabled")
            }
        }
        let reg = Registry::new(false, Box::new(PanickingClock));
        {
            let mut s = reg.span("never");
            s.arg_u64("x", 1);
        }
        reg.counter_add("c", 5);
        reg.gauge_set("g", 1.0);
        reg.hist_record("h", 10);
        reg.warn("nope".into());
        assert_eq!(reg.now_ns(), 0);
        let snap = reg.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let (reg, _) = manual_registry();
        reg.counter_add("records", 3);
        reg.counter_add("records", 4);
        reg.counter_add("zero", 0);
        reg.gauge_set("ratio", 1.5);
        reg.gauge_set("ratio", 2.5);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("records"), Some(&7));
        assert!(!snap.counters.contains_key("zero"));
        assert_eq!(snap.gauges.get("ratio"), Some(&2.5));
    }

    #[test]
    fn histogram_tracks_distribution() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1_000_000);
        assert_eq!(h.sum, 1_001_006);
        assert!(h.mean() > 0.0);
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(1.0) >= 1000);
    }

    #[test]
    fn event_buffer_is_bounded() {
        let (reg, _) = manual_registry();
        // Shrinking the real cap would slow the test; instead verify
        // the accounting path with a tiny synthetic inner.
        let mut inner = Inner::default();
        for i in 0..3 {
            let e = Event {
                name: "x",
                kind: EventKind::Instant,
                ts_ns: i,
                tid: 0,
                args: Vec::new(),
            };
            if inner.events.len() < 2 {
                inner.events.push(e);
            } else {
                inner.dropped_events += 1;
            }
        }
        assert_eq!(inner.events.len(), 2);
        assert_eq!(inner.dropped_events, 1);
        drop(reg);
    }

    #[test]
    fn tids_are_assigned_in_first_seen_order() {
        let (reg, _) = manual_registry();
        reg.instant("main", Vec::new());
        std::thread::scope(|s| {
            s.spawn(|| reg.instant("worker", Vec::new()));
        });
        let snap = reg.snapshot();
        assert_eq!(snap.events[0].tid, 0, "main thread recorded first");
        assert_eq!(snap.events[1].tid, 1, "worker got the next tid");
    }

    #[test]
    fn env_truthiness() {
        for v in ["1", "true", "YES", " on "] {
            assert!(env_truthy(v), "{v}");
        }
        for v in ["0", "false", "", "off", "2"] {
            assert!(!env_truthy(v), "{v}");
        }
    }
}
