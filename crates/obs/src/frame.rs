//! Shared record-framing primitives.
//!
//! Both durable artifacts in this workspace — the crash-consistent
//! run journal in `gtpin-durable` and the binary observability
//! journal ([`crate::binary`]) — frame variable-length payloads the
//! same way: a little-endian length, an FNV-1a 64 checksum of the
//! payload, then the payload bytes. Keeping the checksum and the
//! `[len][fnv64][payload]` codec here (the obs crate is the
//! dependency root of the two) means the torn-tail semantics cannot
//! drift between them: a frame is either intact — header present,
//! length in bounds, checksum matching — or torn, and a torn frame
//! truncates everything after it.

/// Bytes of framing before each payload: `len: u32 LE` then
/// `fnv64: u64 LE`.
pub const RECORD_HEADER: usize = 12;

/// FNV-1a over a byte slice — the per-record checksum.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Append one framed record (`[len][fnv64][payload]`) to `out`.
pub fn frame_record(payload: &[u8], out: &mut Vec<u8>) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// One step of walking a sequence of framed records.
#[derive(Debug, PartialEq, Eq)]
pub enum RecordSplit<'a> {
    /// `bytes` was empty: the previous record was the last.
    Done,
    /// An intact frame: its payload, and how many bytes it consumed
    /// (header plus payload).
    Record {
        /// The checksummed payload.
        payload: &'a [u8],
        /// Total frame length, `RECORD_HEADER + payload.len()`.
        consumed: usize,
    },
    /// Torn: not enough bytes for the header, a length overrunning
    /// the buffer, or a checksum mismatch. Everything from here on is
    /// untrustworthy and should be truncated.
    Torn,
}

/// Split the next framed record off the front of `bytes`.
pub fn split_record(bytes: &[u8]) -> RecordSplit<'_> {
    if bytes.is_empty() {
        return RecordSplit::Done;
    }
    if bytes.len() < RECORD_HEADER {
        return RecordSplit::Torn;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    let want = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    if bytes.len() - RECORD_HEADER < len {
        return RecordSplit::Torn;
    }
    let payload = &bytes[RECORD_HEADER..RECORD_HEADER + len];
    if fnv64(payload) != want {
        return RecordSplit::Torn;
    }
    RecordSplit::Record {
        payload,
        consumed: RECORD_HEADER + len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv64_matches_reference_vectors() {
        // Published FNV-1a 64 vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        frame_record(b"hello", &mut buf);
        frame_record(b"", &mut buf);
        let RecordSplit::Record { payload, consumed } = split_record(&buf) else {
            panic!("first frame intact");
        };
        assert_eq!(payload, b"hello");
        let RecordSplit::Record {
            payload,
            consumed: c2,
        } = split_record(&buf[consumed..])
        else {
            panic!("second frame intact");
        };
        assert_eq!(payload, b"");
        assert_eq!(split_record(&buf[consumed + c2..]), RecordSplit::Done);
    }

    #[test]
    fn every_truncation_of_a_frame_is_torn() {
        let mut buf = Vec::new();
        frame_record(b"payload bytes", &mut buf);
        for cut in 1..buf.len() {
            assert_eq!(split_record(&buf[..cut]), RecordSplit::Torn, "cut {cut}");
        }
    }

    #[test]
    fn corrupt_payload_is_torn() {
        let mut buf = Vec::new();
        frame_record(b"payload", &mut buf);
        let last = buf.len() - 1;
        buf[last] ^= 0x40;
        assert_eq!(split_record(&buf), RecordSplit::Torn);
    }
}
