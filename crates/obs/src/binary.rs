//! The GTOBS01 binary journal: format definition and the single-pass
//! ring-buffered writer.
//!
//! # Why a binary journal
//!
//! The original journal streamed one formatted JSONL line per event:
//! every span close paid for JSON escaping, a `String` allocation,
//! and a `write(2)` syscall. GTOBS01 replaces that hot path with a
//! fixed-width append into a per-thread ring buffer that drains to
//! disk in bulk; the JSONL and Chrome `trace_event` forms still exist
//! but are *converters* over the binary journal (see
//! [`crate::reader`]), not second writers — so the published text
//! schemas cannot drift from what was recorded.
//!
//! # Layout
//!
//! A journal file is a concatenation of **streams**, one per writing
//! process (the file is opened in append mode; a new process pads to
//! a 64-byte boundary and begins a fresh stream, resetting the string
//! table). Every structure below starts 64-byte aligned:
//!
//! ```text
//! stream  := header section*
//! header  := magic "GTOBS01\0" | version u32 LE | pad u32 |
//!            fnv64(bytes[0..16]) u64 LE | zeros to 64
//! section := kind u32 | pad_len u32 | payload_len u64 |
//!            fnv64(payload) u64 | zeros to 64,
//!            then payload, then `pad_len` zeros to realign
//! ```
//!
//! Section kinds: `1` = string-table delta, `2` = event records,
//! `3` = totals records. A string-table delta carries
//! `first_id u32 | count u32 | (count+1) offsets u32 | blob` — the
//! sentinel extra offset means length lookups are `off[i+1]-off[i]`
//! with no per-string length field, and `first_id` pins the delta to
//! its position in the stream-wide id space so names are interned
//! exactly once per stream. Record sections are arrays of fixed
//! 40-byte little-endian records ([`RawRecord`]); an event's argument
//! records follow it contiguously in the same section (the writer
//! never splits an event group across a drain).
//!
//! # Torn tails
//!
//! Sections carry their own checksum, so recovery granularity is the
//! section: a partial tail write invalidates exactly the section it
//! tore, and [`crate::reader::recover`] truncates from there — the
//! same contract as `gtpin-durable`, built on the same
//! [`crate::frame::fnv64`].

use std::collections::HashMap;
use std::io::Write;
use std::path::Path;
use std::sync::{Arc, Mutex, RwLock};

use crate::frame::fnv64;
use crate::registry::{ArgVal, Event, EventKind, Snapshot};

/// Leading magic of every stream header.
pub const MAGIC: [u8; 8] = *b"GTOBS01\0";

/// Current format version.
pub const VERSION: u32 = 1;

/// Bytes in a stream header (and the alignment of every structure).
pub const HEADER_LEN: usize = 64;

/// Bytes in a section header.
pub const SECTION_HEADER_LEN: usize = 64;

/// Bytes in one fixed-width record.
pub const RECORD_LEN: usize = 40;

/// Section kind: string-table delta.
pub const SECT_STRINGS: u32 = 1;
/// Section kind: event records.
pub const SECT_EVENTS: u32 = 2;
/// Section kind: totals records (counters/gauges/histograms).
pub const SECT_TOTALS: u32 = 3;

/// Record kind: span opened (name, tid, `w0` = start ts).
pub const REC_SPAN_ENTER: u8 = 1;
/// Record kind: span closed (`w0` = start ts, `w1` = duration ns,
/// `w2` = following argument-record count).
pub const REC_SPAN_EXIT: u8 = 2;
/// Record kind: point-in-time marker (`w0` = ts, `w2` = arg count).
pub const REC_INSTANT: u8 = 3;
/// Record kind: warning (`name` = interned message id, `w0` = ts,
/// `w2` = arg count).
pub const REC_WARN: u8 = 4;
/// Record kind: one argument of the preceding event (`name` = key
/// id, `flags` = value type, `w0` = value bits).
pub const REC_ARG: u8 = 5;
/// Record kind: counter total (`w0` = value; `flags` bit 0 marks the
/// synthetic `obs.dropped_events` counter, which the Chrome converter
/// skips to match the legacy exporter).
pub const REC_COUNTER: u8 = 6;
/// Record kind: gauge total (`w0` = f64 bits).
pub const REC_GAUGE: u8 = 7;
/// Record kind: histogram totals (`w0` = count, `w1` = sum,
/// `w2` = min, `w3` = max); its non-zero buckets follow.
pub const REC_HIST_SUMMARY: u8 = 8;
/// Record kind: one non-zero histogram bucket (`w0` = bucket index,
/// `w1` = count) of the preceding summary.
pub const REC_HIST_BUCKET: u8 = 9;

/// [`REC_ARG`] value type: unsigned integer.
pub const ARG_U64: u8 = 0;
/// [`REC_ARG`] value type: signed integer (two's-complement bits).
pub const ARG_I64: u8 = 1;
/// [`REC_ARG`] value type: float (IEEE-754 bits).
pub const ARG_F64: u8 = 2;
/// [`REC_ARG`] value type: interned string id.
pub const ARG_STR: u8 = 3;
/// [`REC_ARG`] value type: boolean (0/1).
pub const ARG_BOOL: u8 = 4;

/// Flag bit on [`REC_COUNTER`]: synthetic (writer-generated) total.
pub const FLAG_SYNTHETIC: u8 = 1;

/// Per-thread ring capacity in bytes. Small enough that a crash
/// loses at most a couple hundred records per thread, large enough
/// that draining amortizes the write syscall over ~200 records.
const RING_CAPACITY: usize = 8 * 1024;

/// One fixed-width journal record, decoded. The four `w` words are
/// kind-specific (see the `REC_*` constants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRecord {
    /// One of the `REC_*` kinds.
    pub kind: u8,
    /// Kind-specific flags (`ARG_*` type for arguments).
    pub flags: u8,
    /// Registry-scoped thread id (truncated to 16 bits).
    pub tid: u16,
    /// Interned string id: event name, warn message, or arg key.
    pub name: u32,
    /// Kind-specific payload words.
    pub w: [u64; 4],
}

impl RawRecord {
    /// Append the 40-byte little-endian encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.kind);
        out.push(self.flags);
        out.extend_from_slice(&self.tid.to_le_bytes());
        out.extend_from_slice(&self.name.to_le_bytes());
        for w in self.w {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Decode one record from a 40-byte slice.
    pub fn decode(bytes: &[u8]) -> RawRecord {
        debug_assert_eq!(bytes.len(), RECORD_LEN);
        RawRecord {
            kind: bytes[0],
            flags: bytes[1],
            tid: u16::from_le_bytes(bytes[2..4].try_into().expect("2 bytes")),
            name: u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")),
            w: [
                u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")),
                u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes")),
                u64::from_le_bytes(bytes[24..32].try_into().expect("8 bytes")),
                u64::from_le_bytes(bytes[32..40].try_into().expect("8 bytes")),
            ],
        }
    }
}

/// Zero padding needed after `len` payload bytes to restore 64-byte
/// alignment.
pub fn pad_to_align(len: usize) -> usize {
    (HEADER_LEN - len % HEADER_LEN) % HEADER_LEN
}

/// Render a stream header (64 bytes).
pub fn stream_header() -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[0..8].copy_from_slice(&MAGIC);
    h[8..12].copy_from_slice(&VERSION.to_le_bytes());
    let crc = fnv64(&h[0..16]);
    h[16..24].copy_from_slice(&crc.to_le_bytes());
    h
}

enum Sink {
    File(std::fs::File),
    Buffer(Arc<Mutex<Vec<u8>>>),
}

impl Sink {
    fn write_all(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        match self {
            Sink::File(f) => f.write_all(bytes),
            Sink::Buffer(b) => {
                b.lock()
                    .expect("obs sink poisoned")
                    .extend_from_slice(bytes);
                Ok(())
            }
        }
    }

    fn sync(&mut self) -> std::io::Result<()> {
        match self {
            Sink::File(f) => f.sync_data(),
            Sink::Buffer(_) => Ok(()),
        }
    }
}

struct SinkState {
    out: Sink,
    /// Reused section-assembly buffer so a drain is one `write_all`.
    scratch: Vec<u8>,
}

#[derive(Default)]
struct StringState {
    ids: HashMap<String, u32>,
    /// Interned but not yet written to a string-table delta.
    pending: Vec<String>,
}

struct Ring {
    buf: Vec<u8>,
}

/// The GTOBS01 writer: a shared sink, a stream-wide string interner,
/// and one ring buffer per registry thread id. Recording threads
/// touch only their own ring (uncontended in the steady state); the
/// sink and interner locks are taken when a ring drains.
///
/// Lock order, where nested: ring → sink → strings.
pub(crate) struct BinaryWriter {
    sink: Mutex<SinkState>,
    strings: Mutex<StringState>,
    rings: RwLock<Vec<Arc<Mutex<Ring>>>>,
}

impl BinaryWriter {
    fn new(mut out: Sink) -> std::io::Result<BinaryWriter> {
        out.write_all(&stream_header())?;
        Ok(BinaryWriter {
            sink: Mutex::new(SinkState {
                out,
                scratch: Vec::with_capacity(RING_CAPACITY + 2 * SECTION_HEADER_LEN),
            }),
            strings: Mutex::new(StringState::default()),
            rings: RwLock::new(Vec::new()),
        })
    }

    /// Open (append mode) `path` and start a new stream in it. If the
    /// file's existing length is not 64-byte aligned — a previous
    /// writer died mid-section — zero-pad first so this stream's
    /// header lands aligned and the reader can resynchronize past the
    /// torn tail.
    pub fn open_file(path: &Path) -> std::io::Result<BinaryWriter> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        let len = file.metadata()?.len() as usize;
        let mut out = Sink::File(file);
        let pad = pad_to_align(len);
        if pad > 0 {
            out.write_all(&[0u8; HEADER_LEN][..pad])?;
        }
        BinaryWriter::new(out)
    }

    /// An in-memory writer for tests and benches; the returned buffer
    /// holds the journal bytes.
    pub fn buffer() -> (BinaryWriter, Arc<Mutex<Vec<u8>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        let writer =
            BinaryWriter::new(Sink::Buffer(buf.clone())).expect("buffer sink is infallible");
        (writer, buf)
    }

    /// Intern `s`, returning its stream-wide id. First interning of a
    /// name allocates once and queues it for the next string-table
    /// delta; every later lookup is a hash probe.
    fn intern(&self, s: &str) -> u32 {
        let mut strings = self.strings.lock().expect("obs strings poisoned");
        if let Some(&id) = strings.ids.get(s) {
            return id;
        }
        let id = strings.ids.len() as u32;
        strings.ids.insert(s.to_string(), id);
        strings.pending.push(s.to_string());
        id
    }

    fn ring(&self, tid: u32) -> Arc<Mutex<Ring>> {
        let tid = tid as usize;
        {
            let rings = self.rings.read().expect("obs rings poisoned");
            if let Some(r) = rings.get(tid) {
                return r.clone();
            }
        }
        let mut rings = self.rings.write().expect("obs rings poisoned");
        while rings.len() <= tid {
            rings.push(Arc::new(Mutex::new(Ring {
                buf: Vec::with_capacity(RING_CAPACITY),
            })));
        }
        rings[tid].clone()
    }

    /// Record a span open.
    pub fn span_enter(&self, name: &str, tid: u32, ts_ns: u64) {
        let name = self.intern(name);
        let ring = self.ring(tid);
        let mut ring = ring.lock().expect("obs ring poisoned");
        if ring.buf.len() + RECORD_LEN > RING_CAPACITY {
            self.drain_ring(&mut ring);
        }
        RawRecord {
            kind: REC_SPAN_ENTER,
            flags: 0,
            tid: tid as u16,
            name,
            w: [ts_ns, 0, 0, 0],
        }
        .encode_into(&mut ring.buf);
    }

    /// Record a completed event (span exit, instant, or warn) with
    /// its arguments. The whole group is encoded contiguously so a
    /// drain can never split an event from its arguments.
    pub fn append_event(&self, event: &Event) {
        let (kind, name_id, dur) = match &event.kind {
            EventKind::Span { dur_ns } => (REC_SPAN_EXIT, self.intern(event.name), *dur_ns),
            EventKind::Instant => (REC_INSTANT, self.intern(event.name), 0),
            EventKind::Warn { msg } => (REC_WARN, self.intern(msg), 0),
        };
        let ring = self.ring(event.tid);
        let mut ring = ring.lock().expect("obs ring poisoned");
        let needed = RECORD_LEN * (1 + event.args.len());
        if ring.buf.len() + needed > RING_CAPACITY && !ring.buf.is_empty() {
            self.drain_ring(&mut ring);
        }
        RawRecord {
            kind,
            flags: 0,
            tid: event.tid as u16,
            name: name_id,
            w: [event.ts_ns, dur, event.args.len() as u64, 0],
        }
        .encode_into(&mut ring.buf);
        for (key, value) in &event.args {
            let (flags, bits) = match value {
                ArgVal::U64(v) => (ARG_U64, *v),
                ArgVal::I64(v) => (ARG_I64, *v as u64),
                ArgVal::F64(v) => (ARG_F64, v.to_bits()),
                ArgVal::Str(s) => (ARG_STR, self.intern(s) as u64),
                ArgVal::Bool(b) => (ARG_BOOL, *b as u64),
            };
            RawRecord {
                kind: REC_ARG,
                flags,
                tid: event.tid as u16,
                name: self.intern(key),
                w: [bits, 0, 0, 0],
            }
            .encode_into(&mut ring.buf);
        }
    }

    /// Drain one ring into the sink: any pending string-table delta
    /// first (so every id a record references is already defined),
    /// then the ring contents as an events section. Telemetry never
    /// takes the program down, so sink errors are swallowed here; the
    /// explicit [`BinaryWriter::flush`] surfaces them.
    fn drain_ring(&self, ring: &mut Ring) {
        let _ = self.drain_ring_into_sink(ring);
    }

    fn drain_ring_into_sink(&self, ring: &mut Ring) -> std::io::Result<()> {
        if ring.buf.is_empty() {
            return Ok(());
        }
        let mut sink = self.sink.lock().expect("obs sink poisoned");
        self.write_pending_strings(&mut sink)?;
        let result = write_section_payload(&mut sink, SECT_EVENTS, &ring.buf);
        ring.buf.clear();
        result
    }

    fn write_pending_strings(&self, sink: &mut SinkState) -> std::io::Result<()> {
        let (first_id, pending) = {
            let mut strings = self.strings.lock().expect("obs strings poisoned");
            if strings.pending.is_empty() {
                return Ok(());
            }
            let pending = std::mem::take(&mut strings.pending);
            (strings.ids.len() as u32 - pending.len() as u32, pending)
        };
        let mut payload = Vec::with_capacity(
            8 + 4 * (pending.len() + 1) + pending.iter().map(|s| s.len()).sum::<usize>(),
        );
        payload.extend_from_slice(&first_id.to_le_bytes());
        payload.extend_from_slice(&(pending.len() as u32).to_le_bytes());
        let mut off = 0u32;
        for s in &pending {
            payload.extend_from_slice(&off.to_le_bytes());
            off += s.len() as u32;
        }
        payload.extend_from_slice(&off.to_le_bytes());
        for s in &pending {
            payload.extend_from_slice(s.as_bytes());
        }
        write_section_payload(sink, SECT_STRINGS, &payload)
    }

    /// Drain every ring, then (optionally) append a totals section
    /// from `snapshot`, then sync the sink.
    pub fn flush(&self, totals: Option<&Snapshot>) -> std::io::Result<()> {
        let rings: Vec<Arc<Mutex<Ring>>> = self.rings.read().expect("obs rings poisoned").clone();
        for ring in rings {
            let mut ring = ring.lock().expect("obs ring poisoned");
            self.drain_ring_into_sink(&mut ring)?;
        }
        if let Some(snap) = totals {
            let payload = self.encode_totals(snap);
            let mut sink = self.sink.lock().expect("obs sink poisoned");
            // Totals names may be new to the stream — flush the
            // string delta they created before the section that
            // references it.
            self.write_pending_strings(&mut sink)?;
            write_section_payload(&mut sink, SECT_TOTALS, &payload)?;
        }
        self.sink.lock().expect("obs sink poisoned").out.sync()
    }

    /// Encode the counter/gauge/histogram totals, in exactly the
    /// order the legacy JSONL totals used (counters, gauges,
    /// histograms — each in BTreeMap name order — then the synthetic
    /// dropped-events counter), so the converter reproduces the text
    /// journal byte-for-byte by replaying records in order.
    fn encode_totals(&self, snap: &Snapshot) -> Vec<u8> {
        let mut payload = Vec::new();
        for (name, value) in &snap.counters {
            RawRecord {
                kind: REC_COUNTER,
                flags: 0,
                tid: 0,
                name: self.intern(name),
                w: [*value, 0, 0, 0],
            }
            .encode_into(&mut payload);
        }
        for (name, value) in &snap.gauges {
            RawRecord {
                kind: REC_GAUGE,
                flags: 0,
                tid: 0,
                name: self.intern(name),
                w: [value.to_bits(), 0, 0, 0],
            }
            .encode_into(&mut payload);
        }
        for (name, h) in &snap.histograms {
            let name = self.intern(name);
            RawRecord {
                kind: REC_HIST_SUMMARY,
                flags: 0,
                tid: 0,
                name,
                w: [h.count, h.sum, h.min, h.max],
            }
            .encode_into(&mut payload);
            for (i, &count) in h.buckets.iter().enumerate() {
                if count > 0 {
                    RawRecord {
                        kind: REC_HIST_BUCKET,
                        flags: 0,
                        tid: 0,
                        name,
                        w: [i as u64, count, 0, 0],
                    }
                    .encode_into(&mut payload);
                }
            }
        }
        if snap.dropped_events > 0 {
            RawRecord {
                kind: REC_COUNTER,
                flags: FLAG_SYNTHETIC,
                tid: 0,
                name: self.intern("obs.dropped_events"),
                w: [snap.dropped_events, 0, 0, 0],
            }
            .encode_into(&mut payload);
        }
        payload
    }
}

/// Assemble one section (header + payload + alignment padding) in
/// `sink.scratch` and write it with a single call.
fn write_section_payload(sink: &mut SinkState, kind: u32, payload: &[u8]) -> std::io::Result<()> {
    let pad = pad_to_align(payload.len());
    let scratch = &mut sink.scratch;
    scratch.clear();
    scratch.extend_from_slice(&kind.to_le_bytes());
    scratch.extend_from_slice(&(pad as u32).to_le_bytes());
    scratch.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    scratch.extend_from_slice(&fnv64(payload).to_le_bytes());
    scratch.resize(SECTION_HEADER_LEN, 0);
    scratch.extend_from_slice(payload);
    scratch.resize(SECTION_HEADER_LEN + payload.len() + pad, 0);
    let bytes = std::mem::take(scratch);
    let result = sink.out.write_all(&bytes);
    sink.scratch = bytes;
    result
}
