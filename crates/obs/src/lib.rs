//! # gtpin-obs — telemetry for the GT-Pin reproduction
//!
//! A dependency-free observability layer: scoped spans, typed
//! counters/gauges, fixed-bucket latency histograms, and a binary
//! event journal (GTOBS01, see [`binary`]) from which the text
//! artifacts — a JSONL journal and a Chrome `trace_event` JSON
//! viewable in `about:tracing` / Perfetto — are derived by the
//! converters in [`reader`].
//!
//! ## Enablement
//!
//! Everything is gated on the `GTPIN_OBS` environment variable
//! (`1`/`true`/`yes`/`on`). When unset, every call on the global
//! registry is a branch on a cached bool and an immediate return —
//! no clock reads, no allocation, no locking — so instrumented code
//! costs effectively nothing in production and outputs stay bitwise
//! identical at any thread count. Artifacts land in `GTPIN_OBS_DIR`
//! (default `target/obs`): events drain to `journal.gtobs` through
//! per-thread ring buffers as they happen, and [`write_artifacts`]
//! flushes it (adding the counter/gauge/histogram totals) and
//! converts it to `journal.jsonl` plus `trace.json`.
//!
//! ## Usage
//!
//! ```
//! let mut span = gtpin_obs::span("engine.launch");
//! span.arg_u64("invocation", 7);
//! gtpin_obs::counter_add("executor.trace_records", 4096);
//! gtpin_obs::hist_ns("par.task_ns", 12_345);
//! gtpin_obs::warn!("kernel {} missing from site table", 3);
//! drop(span); // records the span with its duration
//! ```
//!
//! Tests construct private [`Registry`] instances with a
//! [`ManualClock`] so exported artifacts are byte-deterministic;
//! [`Registry::with_buffer_sink`] additionally captures the binary
//! journal in memory.

pub mod binary;
mod clock;
mod export;
pub mod frame;
pub mod reader;
mod registry;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use export::{chrome_trace, event_jsonl_line, json_escape, jsonl, summary, totals_jsonl};
pub use registry::{
    ArgVal, Event, EventKind, Histogram, Registry, Snapshot, SpanGuard, MAX_BUFFERED_EVENTS,
    OBS_DIR_ENV, OBS_ENV,
};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();
static FORCE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// The process-wide registry, initialized from the environment on
/// first use (see [`force_enable`] for the programmatic override).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| Registry::from_env(FORCE.load(std::sync::atomic::Ordering::SeqCst)))
}

/// Enable telemetry regardless of `GTPIN_OBS` — used by `gtpin
/// obs-report` so users get a report without exporting variables.
/// Must be called before the first telemetry call; returns false if
/// the global registry was already initialized disabled.
pub fn force_enable() -> bool {
    FORCE.store(true, std::sync::atomic::Ordering::SeqCst);
    global().enabled()
}

/// Whether the global registry records anything.
pub fn enabled() -> bool {
    global().enabled()
}

/// Current global-registry time in nanoseconds; 0 when disabled, so
/// ad-hoc `now_ns()..now_ns()` deltas cost nothing in production.
pub fn now_ns() -> u64 {
    global().now_ns()
}

/// Open a scoped span on the global registry.
pub fn span(name: &'static str) -> SpanGuard<'static> {
    global().span(name)
}

/// Add to a counter on the global registry.
pub fn counter_add(name: &'static str, delta: u64) {
    global().counter_add(name, delta);
}

/// Set a gauge on the global registry.
pub fn gauge_set(name: &'static str, value: f64) {
    global().gauge_set(name, value);
}

/// Record a (nanosecond) value into a histogram on the global
/// registry.
pub fn hist_ns(name: &'static str, value_ns: u64) {
    global().hist_record(name, value_ns);
}

/// Record a point-in-time marker on the global registry.
pub fn instant(name: &'static str) {
    global().instant(name, Vec::new());
}

/// Record a pre-formatted diagnostic (prefer [`warn!`], which skips
/// formatting entirely when telemetry is off).
pub fn warn_str(msg: String) {
    global().warn(msg);
}

/// Print the per-stage summary and write `trace.json` + journal
/// totals. Returns the artifact paths written (empty when disabled).
pub fn write_artifacts() -> std::io::Result<Vec<std::path::PathBuf>> {
    global().write_artifacts()
}

/// Route a diagnostic through the telemetry journal instead of
/// stderr. Arguments are only evaluated and formatted when telemetry
/// is enabled, so quiet runs are quiet *and* free.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            $crate::warn_str(format!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_follows_the_environment() {
        let env_on = std::env::var(crate::OBS_ENV)
            .map(|v| crate::registry::env_truthy(&v))
            .unwrap_or(false);
        assert_eq!(crate::enabled(), env_on);
        let mut s = crate::span("test.noop");
        s.arg_u64("x", 1);
        assert_eq!(s.active(), env_on);
        drop(s);
        // Whichever way the switch is set, the free functions must
        // not panic or misbehave.
        crate::counter_add("c", 1);
        crate::hist_ns("h", 1);
        crate::instant("i");
        crate::warn!("formatted only when enabled {}", 1);
        if env_on {
            assert!(crate::now_ns() > 0);
        } else {
            assert_eq!(crate::now_ns(), 0);
            assert!(crate::write_artifacts().unwrap().is_empty());
        }
    }
}
