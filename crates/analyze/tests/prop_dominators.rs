//! Property tests for the structural analyses.
//!
//! 1. The iterative dominator tree is cross-checked against the
//!    *definition* of dominance on random CFGs: `a` dominates `b`
//!    iff `a == b` or every entry→`b` path passes through `a` —
//!    equivalently, `b` becomes unreachable when the search refuses
//!    to step through `a`.
//! 2. `analyze_kernels` — the engine behind `gtpin analyze` — is
//!    digest-invariant across worker counts 1..=8 (the values
//!    `GTPIN_THREADS` routes to it), per the workspace determinism
//!    contract.

use gen_isa::builder::KernelBuilder;
use gen_isa::{
    CondMod, ExecSize, FlagReg, Instruction, Opcode, Predicate, Reg, Src, Surface, Terminator,
};
use gtpin_analyze::{analyze_kernels, Cfg, CostParams, Dominators};
use proptest::prelude::*;

/// One pre-Eot instruction of a random stream: `kind` picks the
/// shape, `traw` picks a branch target (mod stream length).
fn build_stream(spec: &[(u8, u16)]) -> Vec<Instruction> {
    let n = spec.len() + 1;
    let mut out = Vec::with_capacity(n);
    for (i, &(kind, traw)) in spec.iter().enumerate() {
        let target = (traw as usize) % n;
        let offset = target as i32 - (i as i32 + 1);
        let instr = match kind {
            // Unconditional jump: ends a block with a single edge.
            7 => {
                let mut j = Instruction::new(Opcode::Jmpi, ExecSize::S1);
                j.branch_offset = offset;
                j
            }
            // Predicated branch: taken edge + fallthrough edge.
            8 | 9 => {
                let mut b = Instruction::new(Opcode::Brc, ExecSize::S1);
                b.pred = Some(Predicate {
                    flag: FlagReg::F0,
                    invert: false,
                });
                b.branch_offset = offset;
                b
            }
            // Straight-line filler.
            _ => {
                let mut a = Instruction::new(Opcode::Add, ExecSize::S8);
                a.dst = Some(Reg(10));
                a.srcs[0] = Src::Reg(Reg(10));
                a.srcs[1] = Src::Imm(1);
                a
            }
        };
        out.push(instr);
    }
    out.push(Instruction::new(Opcode::Eot, ExecSize::S1));
    out
}

/// The definitional oracle: is `b` still reachable from the entry
/// block when the walk refuses to enter `a`?
fn reachable_avoiding(cfg: &Cfg<'_>, a: usize, b: usize) -> bool {
    if a == 0 {
        // Nothing is reachable without stepping through the entry.
        return false;
    }
    let mut seen = vec![false; cfg.num_blocks()];
    let mut stack = vec![0usize];
    seen[0] = true;
    while let Some(x) = stack.pop() {
        if x == b {
            return true;
        }
        for &s in cfg.succs(x) {
            if s != a && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dominators_match_the_reachability_definition(
        spec in prop::collection::vec((0u8..10, 0u16..u16::MAX), 1..24),
    ) {
        let instrs = build_stream(&spec);
        let cfg = Cfg::from_instrs(&instrs).expect("targets are in range by construction");
        let dom = Dominators::compute(&cfg);
        let reachable = cfg.reachable();
        for b in 0..cfg.num_blocks() {
            if !reachable[b] {
                continue;
            }
            // The entry dominates every reachable block.
            prop_assert!(dom.dominates(0, b), "entry must dominate bb{b}");
            for (a, &a_reachable) in reachable.iter().enumerate() {
                if !a_reachable {
                    continue;
                }
                let want = a == b || !reachable_avoiding(&cfg, a, b);
                prop_assert_eq!(
                    dom.dominates(a, b),
                    want,
                    "dominates(bb{}, bb{}) disagrees with the definition",
                    a,
                    b
                );
            }
        }
    }
}

/// A structured kernel parameterized by proptest: a counted loop
/// whose body mixes ALU work and a send, so the analysis exercises
/// dominators, trip resolution, ranges, and every cost category.
fn counted_kernel(name: &str, bound: u32, body_adds: u8, send_bytes: u32) -> gen_isa::KernelBinary {
    let mut b = KernelBuilder::new(name);
    let entry = b.entry_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
    b.set_terminator(entry, Terminator::Jump(body));
    {
        let blk = b.block_mut(body);
        for i in 0..body_adds {
            blk.add(
                ExecSize::S8,
                Reg(20 + i % 8),
                Src::Reg(Reg(20 + i % 8)),
                Src::Imm(3),
            );
        }
        blk.send_read(ExecSize::S8, Reg(40), Reg(2), Surface::Global, send_bytes);
        blk.add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1));
        blk.cmp(
            ExecSize::S1,
            CondMod::Lt,
            FlagReg::F0,
            Src::Reg(Reg(2)),
            Src::Imm(bound),
        );
    }
    b.set_terminator(
        body,
        Terminator::CondJump {
            flag: FlagReg::F0,
            invert: false,
            taken: body,
            fallthrough: exit,
        },
    );
    b.block_mut(exit).eot();
    b.build().expect("fixture kernels validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn analysis_digest_is_thread_count_invariant(
        params in prop::collection::vec((1u32..600, 0u8..12, 1u32..4096), 1..6),
    ) {
        let bins: Vec<gen_isa::KernelBinary> = params
            .iter()
            .enumerate()
            .map(|(i, &(bound, adds, bytes))| {
                counted_kernel(&format!("k{i}"), bound, adds, bytes)
            })
            .collect();
        let cost = CostParams {
            frequency_hz: 1_000_000_000.0,
            issue_cycles: [1, 1, 2, 2, 32],
            extended_math_cycles: 6,
            send_bytes_per_cycle: 10,
            native_simd_lanes: 4,
            assumed_trips: 16,
        };
        let baseline = analyze_kernels(&bins, &cost, 1).expect("serial analysis succeeds");
        let render: Vec<String> = baseline.iter().map(|r| r.render()).collect();
        let digests: Vec<u64> = baseline.iter().map(|r| r.digest()).collect();
        for threads in 2..=8 {
            let got = analyze_kernels(&bins, &cost, threads).expect("parallel analysis succeeds");
            let got_render: Vec<String> = got.iter().map(|r| r.render()).collect();
            let got_digests: Vec<u64> = got.iter().map(|r| r.digest()).collect();
            prop_assert_eq!(&got_render, &render, "renders diverge at {} threads", threads);
            prop_assert_eq!(&got_digests, &digests, "digests diverge at {} threads", threads);
        }
    }
}
