//! Dominator trees over [`Cfg`]s.
//!
//! Uses the Cooper–Harvey–Kennedy iterative algorithm: immediate
//! dominators converge by repeated intersection over the reverse
//! post-order until fixpoint. On the small, mostly-reducible CFGs the
//! JIT emits this settles in one or two passes and needs no auxiliary
//! semidominator machinery.
//!
//! Conventions:
//!
//! * the entry block (block 0) has no immediate dominator;
//! * unreachable blocks have no immediate dominator and dominate only
//!   themselves — they are dead code, and the loop/cost layers skip
//!   them entirely;
//! * `dominates(a, b)` is reflexive.
//!
//! The definition is cross-checked against a naive
//! remove-and-reprobe reachability oracle on random CFGs by
//! `tests/prop_dominators.rs`.

use crate::cfg::Cfg;

/// Sentinel for "no immediate dominator assigned".
const UNDEF: usize = usize::MAX;

/// The dominator tree of one CFG.
#[derive(Debug, Clone)]
pub struct Dominators {
    /// Immediate dominator per block; `UNDEF` for the entry block and
    /// for unreachable blocks.
    idom: Vec<usize>,
    /// Which blocks were entry-reachable when the tree was built.
    reachable: Vec<bool>,
}

impl Dominators {
    /// Compute the dominator tree of `cfg`.
    pub fn compute(cfg: &Cfg<'_>) -> Dominators {
        let nb = cfg.num_blocks();
        let reachable = cfg.reachable().to_vec();
        let mut rpo_index = vec![UNDEF; nb];
        for (i, &b) in cfg.rpo().iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom = vec![UNDEF; nb];
        if nb == 0 {
            return Dominators { idom, reachable };
        }
        // During iteration the entry points at itself so `intersect`
        // terminates; the self-edge is dropped before returning.
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.rpo() {
                if b == 0 || !reachable[b] {
                    continue;
                }
                let mut new_idom = UNDEF;
                for &p in cfg.preds(b) {
                    if idom[p] == UNDEF {
                        continue;
                    }
                    new_idom = if new_idom == UNDEF {
                        p
                    } else {
                        intersect(&idom, &rpo_index, p, new_idom)
                    };
                }
                if new_idom != UNDEF && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        idom[0] = UNDEF;
        Dominators { idom, reachable }
    }

    /// Immediate dominator of `b`; `None` for the entry block and for
    /// unreachable blocks.
    pub fn idom(&self, b: usize) -> Option<usize> {
        match self.idom[b] {
            UNDEF => None,
            d => Some(d),
        }
    }

    /// Whether `a` dominates `b` (reflexively). An unreachable block
    /// dominates only itself.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if a == b {
            return true;
        }
        if !self.reachable[a] || !self.reachable[b] {
            return false;
        }
        let mut x = b;
        while let Some(d) = self.idom(x) {
            if d == a {
                return true;
            }
            x = d;
        }
        false
    }

    /// Depth of `b` in the dominator tree (entry = 0); `None` for
    /// unreachable blocks.
    pub fn depth(&self, b: usize) -> Option<u32> {
        if !self.reachable[b] {
            return None;
        }
        let mut depth = 0u32;
        let mut x = b;
        while let Some(d) = self.idom(x) {
            depth += 1;
            x = d;
        }
        Some(depth)
    }
}

/// Walk both candidates up the (partial) dominator tree until they
/// meet; RPO indices orient the walk.
fn intersect(idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_index[a] > rpo_index[b] {
            a = idom[a];
        }
        while rpo_index[b] > rpo_index[a] {
            b = idom[b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, KernelBinary, Reg, Src, Terminator};

    /// entry → {then, else} → join → eot: the classic diamond.
    fn diamond() -> KernelBinary {
        let mut b = KernelBuilder::new("diamond");
        let entry = b.entry_block();
        let then_b = b.new_block();
        let else_b = b.new_block();
        let join = b.new_block();
        b.block_mut(entry).cmp(
            ExecSize::S1,
            CondMod::Lt,
            FlagReg::F0,
            Src::Reg(Reg(1)),
            Src::Imm(4),
        );
        b.set_terminator(
            entry,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: then_b,
                fallthrough: else_b,
            },
        );
        b.block_mut(then_b)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(1)), Src::Imm(1));
        b.set_terminator(then_b, Terminator::Jump(join));
        b.block_mut(else_b)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(1)), Src::Imm(2));
        b.set_terminator(else_b, Terminator::Jump(join));
        b.block_mut(join).eot();
        b.build().unwrap()
    }

    #[test]
    fn diamond_idoms() {
        // Flattening inserts a trampoline jmpi for the non-adjacent
        // fallthrough, so the diamond decodes to five blocks:
        // bb0(cmp,brc) → {bb2 then, bb1 trampoline}; bb1 → bb3 else;
        // bb2 → bb4; bb3 → bb4 join.
        let flat = diamond().flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        assert_eq!(cfg.num_blocks(), 5);
        let dom = Dominators::compute(&cfg);
        assert_eq!(dom.idom(0), None);
        assert_eq!(dom.idom(1), Some(0));
        assert_eq!(dom.idom(2), Some(0));
        assert_eq!(dom.idom(3), Some(1));
        // The join is dominated by the entry, not by either arm.
        assert_eq!(dom.idom(4), Some(0));
        assert!(dom.dominates(0, 4));
        assert!(!dom.dominates(2, 4));
        assert!(dom.dominates(1, 3));
        assert!(dom.dominates(2, 2));
        assert_eq!(dom.depth(0), Some(0));
        assert_eq!(dom.depth(4), Some(1));
        assert_eq!(dom.depth(3), Some(2));
    }

    #[test]
    fn loop_body_dominated_by_header() {
        // entry → head; head → head (backedge) | exit.
        let mut b = KernelBuilder::new("loop");
        let entry = b.entry_block();
        let head = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(head));
        b.block_mut(head)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Imm(8),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let flat = b.build().unwrap().flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        assert!(dom.dominates(0, 1));
        assert!(dom.dominates(1, 2));
        assert!(!dom.dominates(2, 1));
    }
}
