//! Dense bit-sets used as dataflow facts.
//!
//! Two shapes cover every analysis in this crate:
//!
//! * [`RegSet`] — a fixed-width set over the 128 GRF registers plus
//!   the two flag registers (`f0`/`f1`), 136 bits total. Liveness
//!   facts are `RegSet`s.
//! * [`DefSet`] — a growable set over definition sites, sized once per
//!   kernel. Reaching-definition facts are `DefSet`s.

use gen_isa::{FlagReg, Reg, NUM_GRF};

/// A set of GRF registers and flag registers.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct RegSet {
    regs: u128,
    flags: u8,
}

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet { regs: 0, flags: 0 };

    /// Insert a GRF register. Out-of-range registers (≥ [`NUM_GRF`])
    /// are ignored; structural validation reports those separately.
    pub fn insert_reg(&mut self, r: Reg) {
        if r.0 < NUM_GRF {
            self.regs |= 1u128 << r.0;
        }
    }

    /// Remove a GRF register.
    pub fn remove_reg(&mut self, r: Reg) {
        if r.0 < NUM_GRF {
            self.regs &= !(1u128 << r.0);
        }
    }

    /// Whether the set contains a GRF register.
    pub fn contains_reg(&self, r: Reg) -> bool {
        r.0 < NUM_GRF && (self.regs >> r.0) & 1 == 1
    }

    /// Insert a flag register.
    pub fn insert_flag(&mut self, f: FlagReg) {
        self.flags |= 1 << f.index();
    }

    /// Remove a flag register.
    pub fn remove_flag(&mut self, f: FlagReg) {
        self.flags &= !(1 << f.index());
    }

    /// Whether the set contains a flag register.
    pub fn contains_flag(&self, f: FlagReg) -> bool {
        (self.flags >> f.index()) & 1 == 1
    }

    /// Union `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let before = (self.regs, self.flags);
        self.regs |= other.regs;
        self.flags |= other.flags;
        (self.regs, self.flags) != before
    }

    /// Remove every member of `other` from `self`.
    pub fn subtract(&mut self, other: &RegSet) {
        self.regs &= !other.regs;
        self.flags &= !other.flags;
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.regs == 0 && self.flags == 0
    }

    /// Number of members (registers plus flags).
    pub fn len(&self) -> usize {
        (self.regs.count_ones() + self.flags.count_ones()) as usize
    }

    /// Iterate the GRF registers in the set, in index order.
    ///
    /// Walks set bits directly via `trailing_zeros`, so iteration
    /// cost is proportional to the population count, not the 128-bit
    /// width — liveness and reaching facts are usually sparse.
    pub fn iter_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        let mut bits = self.regs;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros() as u8;
            bits &= bits - 1;
            Some(Reg(i))
        })
    }

    /// Iterate the flag registers in the set.
    pub fn iter_flags(&self) -> impl Iterator<Item = FlagReg> + '_ {
        [FlagReg::F0, FlagReg::F1]
            .into_iter()
            .filter(|f| self.contains_flag(*f))
    }
}

impl std::fmt::Debug for RegSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for r in self.iter_regs() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{r}")?;
            first = false;
        }
        for fl in self.iter_flags() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{fl}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// A growable bit-set over definition sites (or any small dense index
/// space). All sets participating in one analysis share a capacity.
#[derive(Clone, PartialEq, Eq)]
pub struct DefSet {
    words: Vec<u64>,
}

impl DefSet {
    /// The empty set with capacity for `len` indices.
    pub fn empty(len: usize) -> DefSet {
        DefSet {
            words: vec![0; len.div_ceil(64)],
        }
    }

    /// Insert index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` exceeds the capacity chosen at construction.
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Remove index `i`. Out-of-capacity indices are a no-op.
    pub fn remove(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// Whether the set contains index `i`.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| (w >> (i % 64)) & 1 == 1)
    }

    /// Union `other` into `self`; returns whether `self` changed.
    pub fn union_with(&mut self, other: &DefSet) -> bool {
        let mut changed = false;
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            let before = *w;
            *w |= o;
            changed |= *w != before;
        }
        changed
    }

    /// Remove every member of `other` from `self`.
    pub fn subtract(&mut self, other: &DefSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterate the member indices in ascending order.
    ///
    /// Per-word `trailing_zeros` walk: zero words cost one compare,
    /// so sparse reaching facts iterate in O(members + words) rather
    /// than O(capacity).
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, w)| {
            let mut bits = *w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl std::fmt::Debug for DefSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regset_insert_remove_contains() {
        let mut s = RegSet::EMPTY;
        assert!(s.is_empty());
        s.insert_reg(Reg(0));
        s.insert_reg(Reg(127));
        s.insert_flag(FlagReg::F1);
        assert!(s.contains_reg(Reg(0)));
        assert!(s.contains_reg(Reg(127)));
        assert!(!s.contains_reg(Reg(64)));
        assert!(s.contains_flag(FlagReg::F1));
        assert!(!s.contains_flag(FlagReg::F0));
        assert_eq!(s.len(), 3);
        s.remove_reg(Reg(127));
        s.remove_flag(FlagReg::F1);
        assert_eq!(s.len(), 1);
        // Out-of-range registers are ignored, not mis-filed.
        s.insert_reg(Reg(200));
        assert!(!s.contains_reg(Reg(200)));
    }

    #[test]
    fn regset_union_and_subtract() {
        let mut a = RegSet::EMPTY;
        a.insert_reg(Reg(1));
        let mut b = RegSet::EMPTY;
        b.insert_reg(Reg(2));
        b.insert_flag(FlagReg::F0);
        assert!(a.union_with(&b), "union adds members");
        assert!(!a.union_with(&b), "second union is a fixpoint");
        assert_eq!(a.len(), 3);
        a.subtract(&b);
        assert!(a.contains_reg(Reg(1)));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn regset_iterates_in_order() {
        let mut s = RegSet::EMPTY;
        s.insert_reg(Reg(5));
        s.insert_reg(Reg(3));
        let regs: Vec<u8> = s.iter_regs().map(|r| r.0).collect();
        assert_eq!(regs, vec![3, 5]);
    }

    #[test]
    fn iterators_walk_word_boundaries() {
        let mut s = RegSet::EMPTY;
        for i in [0u8, 63, 64, 127] {
            s.insert_reg(Reg(i));
        }
        let regs: Vec<u8> = s.iter_regs().map(|r| r.0).collect();
        assert_eq!(regs, vec![0, 63, 64, 127]);
        let mut d = DefSet::empty(256);
        for i in [0usize, 63, 64, 128, 255] {
            d.insert(i);
        }
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![0, 63, 64, 128, 255]);
    }

    #[test]
    fn defset_ops() {
        let mut a = DefSet::empty(130);
        a.insert(0);
        a.insert(129);
        assert!(a.contains(0) && a.contains(129) && !a.contains(64));
        let mut b = DefSet::empty(130);
        b.insert(64);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 129]);
        a.subtract(&b);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 129]);
        assert!(!a.is_empty());
        a.remove(0);
        a.remove(10_000); // out of capacity: no-op, no panic
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![129]);
    }
}
