//! Static cycle-cost model over a kernel's loop forest.
//!
//! Walks every reachable block, prices its instructions with
//! per-[`OpcodeCategory`] issue tables, and multiplies by the trip
//! product of the loops containing it (proven trip counts where the
//! matcher succeeded, an assumed default otherwise). All accounting
//! is integer (`u64`, saturating) so the estimate is bit-stable
//! across platforms and thread counts.
//!
//! The tables come from the `gpu-device` topology via
//! `GpuTopology::cost_params()` — EU count, threads per EU and
//! frequency shape the send latency and the bandwidth divisor — so
//! the same kernel prices differently on Ivy Bridge and Haswell, the
//! way the paper's design-space exploration expects.

use crate::cfg::Cfg;
use crate::dominators::Dominators;
use crate::loops::{LoopForest, TripCount};
use gen_isa::Instruction;

/// Device-derived pricing knobs. Constructed by
/// `gpu_device::GpuTopology::cost_params()` or directly in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostParams {
    /// Clock frequency the cycle total divides by to reach seconds.
    pub frequency_hz: f64,
    /// Issue cycles per [`OpcodeCategory`], indexed by
    /// [`OpcodeCategory::index`]. The send entry is the *base* issue
    /// cost; payload cycles are added from the descriptor.
    pub issue_cycles: [u64; 5],
    /// Extra cycles for extended-math opcodes (`inv`, `sqrt`,
    /// transcendentals) on top of their category issue cost.
    pub extended_math_cycles: u64,
    /// Bytes one send moves per cycle (bandwidth divisor).
    pub send_bytes_per_cycle: u64,
    /// Native FPU width in lanes; wider instructions issue
    /// `lanes / native` times.
    pub native_simd_lanes: u64,
    /// Iterations assumed for loops whose trip count the matcher
    /// could not bound.
    pub assumed_trips: u64,
}

impl CostParams {
    /// Cycle price of one instruction.
    pub fn instruction_cycles(&self, instr: &Instruction) -> u64 {
        let cat = instr.opcode.category();
        let mut cycles = self.issue_cycles[cat.index()];
        if instr.opcode.is_extended_math() {
            cycles += self.extended_math_cycles;
        }
        if let Some(desc) = instr.send {
            cycles += (desc.bytes as u64).div_ceil(self.send_bytes_per_cycle.max(1));
        }
        // SIMD beyond the native width issues in multiple slots.
        let lanes = instr.exec_size.lanes() as u64;
        cycles.saturating_mul(lanes.div_ceil(self.native_simd_lanes.max(1)))
    }
}

/// Cost of one reachable basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockCost {
    /// Block index.
    pub block: u32,
    /// Loop-nesting depth (0 = not in any loop).
    pub depth: u32,
    /// Trip multiplier applied to this block.
    pub trips: u64,
    /// Whether every loop level contributing to `trips` was proven
    /// (no assumed defaults).
    pub proven: bool,
    /// Cycles for one pass over the block.
    pub cycles_once: u64,
    /// `cycles_once × trips`, saturating.
    pub cycles_total: u64,
    /// `cycles_total` split per [`OpcodeCategory::index`].
    pub by_category: [u64; 5],
}

/// Static cost of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticCost {
    /// Estimated cycles for one invocation of the kernel.
    pub cycles_per_invocation: u64,
    /// Trip-expanded instruction count (instructions × trips summed
    /// over reachable blocks).
    pub static_instructions: u64,
    /// Per-block provenance, ascending block index. Unreachable
    /// blocks are dead code and are excluded.
    pub blocks: Vec<BlockCost>,
    /// `cycles_per_invocation` split per [`OpcodeCategory::index`].
    pub by_category: [u64; 5],
    /// The parameters used, echoed for provenance.
    pub params: CostParams,
}

impl StaticCost {
    /// Price `cfg` under `params`, using `forest` (with trips already
    /// resolved) for multiplicity.
    pub fn compute(
        cfg: &Cfg<'_>,
        _dom: &Dominators,
        forest: &LoopForest,
        params: &CostParams,
    ) -> StaticCost {
        let mut blocks = Vec::new();
        let mut total = 0u64;
        let mut static_instructions = 0u64;
        let mut by_category = [0u64; 5];
        for b in 0..cfg.num_blocks() {
            if !cfg.reachable()[b] {
                continue;
            }
            let trips = forest.block_trip_product(b, params.assumed_trips);
            let mut proven = true;
            let mut cur = forest.innermost[b];
            while let Some(i) = cur {
                proven &= forest.loops[i].trips.is_proven();
                cur = forest.loops[i].parent;
            }
            let depth = forest.innermost[b].map_or(0, |i| forest.loops[i].depth);

            let mut cycles_once = 0u64;
            let mut block_cat = [0u64; 5];
            let mut instr_count = 0u64;
            for i in cfg.block_range(b) {
                let instr = &cfg.instrs[i];
                let c = params.instruction_cycles(instr);
                cycles_once = cycles_once.saturating_add(c);
                let cat = instr.opcode.category().index();
                block_cat[cat] = block_cat[cat].saturating_add(c.saturating_mul(trips));
                instr_count += 1;
            }
            let cycles_total = cycles_once.saturating_mul(trips);
            total = total.saturating_add(cycles_total);
            static_instructions =
                static_instructions.saturating_add(instr_count.saturating_mul(trips));
            for (acc, c) in by_category.iter_mut().zip(&block_cat) {
                *acc = acc.saturating_add(*c);
            }
            blocks.push(BlockCost {
                block: b as u32,
                depth,
                trips,
                proven,
                cycles_once,
                cycles_total,
                by_category: block_cat,
            });
        }
        StaticCost {
            cycles_per_invocation: total,
            static_instructions,
            blocks,
            by_category,
            params: *params,
        }
    }

    /// Estimated seconds per *dynamic* instruction: cycles divided by
    /// the trip-expanded instruction count, over the device clock.
    /// This is the quantity the pre-screening pass scales by measured
    /// dynamic instruction counts.
    pub fn seconds_per_instruction(&self) -> f64 {
        if self.static_instructions == 0 {
            return 0.0;
        }
        (self.cycles_per_invocation as f64 / self.static_instructions as f64)
            / self.params.frequency_hz
    }
}

/// Convenience: resolve trips on `forest` from `ranges`, then price.
pub fn cost_with_ranges(
    cfg: &Cfg<'_>,
    dom: &Dominators,
    forest: &mut LoopForest,
    ranges: &crate::range::ValueRanges,
    params: &CostParams,
) -> StaticCost {
    forest.resolve_trips(cfg, &|block, src| ranges.entry_range(block, src));
    StaticCost::compute(cfg, dom, forest, params)
}

/// Label for one trip count in reports.
pub fn trips_label(t: TripCount, assumed: u64) -> String {
    match t {
        TripCount::Exact(n) => format!("{n}"),
        TripCount::AtMost(n) => format!("≤{n}"),
        TripCount::Unknown => format!("?{assumed}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Reg, Src, Surface, Terminator};

    /// Flat tables so expectations stay arithmetic.
    pub(crate) fn test_params() -> CostParams {
        CostParams {
            frequency_hz: 1_000_000_000.0,
            issue_cycles: [1, 1, 2, 2, 16],
            extended_math_cycles: 6,
            send_bytes_per_cycle: 16,
            native_simd_lanes: 4,
            assumed_trips: 16,
        }
    }

    #[test]
    fn prices_instructions_by_category_width_and_payload() {
        let p = test_params();
        let mut mov = Instruction::new(gen_isa::Opcode::Mov, ExecSize::S1);
        mov.dst = Some(Reg(2));
        assert_eq!(p.instruction_cycles(&mov), 1);
        // SIMD16 mov: 16 lanes / 4 native = 4 issue slots.
        let mov16 = Instruction::new(gen_isa::Opcode::Mov, ExecSize::S16);
        assert_eq!(p.instruction_cycles(&mov16), 4);
        // Extended math pays the surcharge on the computation cost.
        let sqrt = Instruction::new(gen_isa::Opcode::Sqrt, ExecSize::S1);
        assert_eq!(p.instruction_cycles(&sqrt), 8);
        // A 64-byte send: 16 base + 64/16 payload.
        let mut send = Instruction::new(gen_isa::Opcode::Send, ExecSize::S8);
        send.send = Some(gen_isa::SendDescriptor {
            op: gen_isa::SendOp::Read,
            surface: Surface::Global,
            bytes: 64,
        });
        assert_eq!(p.instruction_cycles(&send), (16 + 4) * 2);
    }

    #[test]
    fn loop_blocks_multiply_by_trips() {
        // entry(mov) → head(add, cmp, brc ×8) → exit(eot).
        let mut b = KernelBuilder::new("k");
        let entry = b.entry_block();
        let head = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(head));
        b.block_mut(head)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Imm(8),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let bin = b.build().unwrap();
        let flat = bin.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let mut forest = LoopForest::compute(&cfg, &dom);
        let ranges = crate::range::ValueRanges::compute(&cfg, &dom, &forest);
        let cost = cost_with_ranges(&cfg, &dom, &mut forest, &ranges, &test_params());

        // entry: mov(1) + jmpi(2) = 3 cycles once, 1 trip.
        // head: add(2) + cmp(1) + brc(2) = 5 cycles once, 8 trips.
        // exit: eot(2), 1 trip.
        assert_eq!(cost.blocks.len(), 3);
        assert_eq!(cost.blocks[0].cycles_total, 3);
        assert_eq!(cost.blocks[1].trips, 8);
        assert!(cost.blocks[1].proven);
        assert_eq!(cost.blocks[1].cycles_total, 40);
        assert_eq!(cost.blocks[2].cycles_total, 2);
        assert_eq!(cost.cycles_per_invocation, 45);
        // 2 + 3×8 + 1 instructions expanded.
        assert_eq!(cost.static_instructions, 27);
        assert!(cost.seconds_per_instruction() > 0.0);
    }
}
