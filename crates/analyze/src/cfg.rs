//! Control-flow graphs over flattened instruction streams.
//!
//! Every analysis in this crate runs on the *flattened* kernel view —
//! the same linear instruction stream the binary rewriter splices and
//! the executor runs — so results apply to exactly the bytes that
//! execute. Blocks are the half-open leader ranges computed by
//! [`gen_isa::encode::leaders`]: index 0, every branch target, and
//! every instruction following a control transfer.

use gen_isa::encode::leaders;
use gen_isa::{DecodeError, DecodedKernel, Instruction, KernelBinary, Opcode};

/// A control-flow graph borrowed over an instruction stream:
/// block ranges, predecessor/successor maps, a reverse post-order,
/// and entry reachability.
#[derive(Debug)]
pub struct Cfg<'a> {
    /// The instruction stream the graph describes.
    pub instrs: &'a [Instruction],
    /// Sorted leader indices; block `b` spans
    /// `bb_starts[b]..bb_starts[b+1]` (or the stream end).
    pub bb_starts: Vec<u32>,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
    rpo: Vec<usize>,
    reachable: Vec<bool>,
}

impl<'a> Cfg<'a> {
    /// Build a CFG from a raw instruction stream, computing leaders.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadBranchTarget`] when a control
    /// transfer targets an index outside the stream.
    pub fn from_instrs(instrs: &'a [Instruction]) -> Result<Cfg<'a>, DecodeError> {
        let bb_starts = leaders(instrs)?;
        Ok(Cfg::build(instrs, bb_starts))
    }

    /// Build a CFG from a decoded kernel (re-deriving leaders from the
    /// stream rather than trusting the carried table).
    ///
    /// # Errors
    ///
    /// Same as [`Cfg::from_instrs`].
    pub fn from_decoded(kernel: &'a DecodedKernel) -> Result<Cfg<'a>, DecodeError> {
        Cfg::from_instrs(&kernel.instrs)
    }

    fn build(instrs: &'a [Instruction], bb_starts: Vec<u32>) -> Cfg<'a> {
        let nb = bb_starts.len();
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); nb];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];

        let block_of_target = |target: usize| -> usize {
            // Branch targets are leaders by construction, so the
            // search is exact; a miss would mean the leader table does
            // not belong to this stream.
            bb_starts
                .binary_search(&(target as u32))
                .expect("branch targets are block leaders")
        };

        for (b, out) in succs.iter_mut().enumerate() {
            let end = bb_starts
                .get(b + 1)
                .map(|&s| s as usize)
                .unwrap_or(instrs.len());
            let last = &instrs[end - 1];
            let target = || {
                last.branch_target(end - 1)
                    .expect("jmpi/brc carry a branch target")
            };
            match last.opcode {
                Opcode::Jmpi => out.push(block_of_target(target())),
                Opcode::Brc => {
                    out.push(block_of_target(target()));
                    if b + 1 < nb {
                        out.push(b + 1);
                    }
                }
                Opcode::Eot | Opcode::Ret => {}
                // Anything else (including `call`, which validation
                // rejects upstream) falls through to the next block.
                _ => {
                    if b + 1 < nb {
                        out.push(b + 1);
                    }
                }
            }
            out.dedup();
        }
        for (b, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s].push(b);
            }
        }

        // Iterative DFS from the entry block: post-order reversed is
        // the reverse post-order; visited marks are entry
        // reachability.
        let mut reachable = vec![false; nb];
        let mut post = Vec::with_capacity(nb);
        if nb > 0 {
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            reachable[0] = true;
            while let Some(&mut (b, ref mut next)) = stack.last_mut() {
                if *next < succs[b].len() {
                    let s = succs[b][*next];
                    *next += 1;
                    if !reachable[s] {
                        reachable[s] = true;
                        stack.push((s, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        post.reverse();
        let mut rpo = post;
        // Unreachable blocks are appended in layout order so analyses
        // still assign them (vacuous) facts.
        rpo.extend((0..nb).filter(|&b| !reachable[b]));

        Cfg {
            instrs,
            bb_starts,
            succs,
            preds,
            rpo,
            reachable,
        }
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.bb_starts.len()
    }

    /// Half-open instruction range of block `b`.
    pub fn block_range(&self, b: usize) -> std::ops::Range<usize> {
        let start = self.bb_starts[b] as usize;
        let end = self
            .bb_starts
            .get(b + 1)
            .map(|&s| s as usize)
            .unwrap_or(self.instrs.len());
        start..end
    }

    /// The block containing instruction `idx`.
    pub fn block_of(&self, idx: usize) -> usize {
        match self.bb_starts.binary_search(&(idx as u32)) {
            Ok(b) => b,
            Err(b) => b - 1,
        }
    }

    /// Successor blocks of `b`.
    pub fn succs(&self, b: usize) -> &[usize] {
        &self.succs[b]
    }

    /// Predecessor blocks of `b`.
    pub fn preds(&self, b: usize) -> &[usize] {
        &self.preds[b]
    }

    /// Reverse post-order over reachable blocks, followed by
    /// unreachable blocks in layout order.
    pub fn rpo(&self) -> &[usize] {
        &self.rpo
    }

    /// Entry reachability per block — the reachability analysis the
    /// lint pass consumes (equivalent to a forward may-analysis with a
    /// boolean fact; see the cross-check in [`crate::dataflow`]).
    pub fn reachable(&self) -> &[bool] {
        &self.reachable
    }
}

/// Convenience: flatten a structured kernel and build its CFG, keeping
/// the flattened stream alive alongside the graph indices.
pub struct KernelCfg {
    /// The flattened kernel.
    pub flat: DecodedKernel,
}

impl KernelCfg {
    /// Flatten `kernel`; borrow a [`Cfg`] via [`KernelCfg::cfg`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::BadBranchTarget`] when flattening
    /// produced a branch outside the stream (cannot happen for
    /// validated kernels).
    pub fn new(kernel: &KernelBinary) -> Result<KernelCfg, DecodeError> {
        let flat = kernel.flatten();
        // Surface leader errors eagerly so `cfg()` cannot fail.
        leaders(&flat.instrs)?;
        Ok(KernelCfg { flat })
    }

    /// Borrow the CFG over the flattened stream.
    pub fn cfg(&self) -> Cfg<'_> {
        Cfg::from_instrs(&self.flat.instrs).expect("leaders checked at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Reg, Src, Terminator};

    fn loop_kernel() -> KernelBinary {
        // bb0: add, cmp, brc -> bb0 | bb1 ; bb1: eot
        let mut b = KernelBuilder::new("loop");
        let head = b.entry_block();
        let exit = b.new_block();
        b.block_mut(head)
            .add(ExecSize::S1, Reg(1), Src::Reg(Reg(1)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Imm(10),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        b.build().unwrap()
    }

    #[test]
    fn loop_edges_and_rpo() {
        let flat = loop_kernel().flatten();
        let cfg = Cfg::from_decoded(&flat).unwrap();
        assert_eq!(cfg.num_blocks(), 2);
        assert_eq!(cfg.succs(0), &[0, 1]);
        assert_eq!(cfg.succs(1), &[] as &[usize]);
        assert_eq!(cfg.preds(0), &[0]);
        assert_eq!(cfg.preds(1), &[0]);
        assert_eq!(cfg.rpo(), &[0, 1]);
        assert_eq!(cfg.reachable(), &[true, true]);
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(3), 1);
    }

    #[test]
    fn unreachable_block_detected() {
        // 0: jmpi +1 (skip bb1) ; 1: add (unreachable) ; 2: eot
        let mut jmp = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        jmp.branch_offset = 1;
        let mut add = Instruction::new(Opcode::Add, ExecSize::S1);
        add.dst = Some(Reg(1));
        add.srcs = [Src::Reg(Reg(1)), Src::Imm(1), Src::Null];
        let eot = Instruction::new(Opcode::Eot, ExecSize::S1);
        let instrs = vec![jmp, add, eot];
        let cfg = Cfg::from_instrs(&instrs).unwrap();
        assert_eq!(cfg.num_blocks(), 3);
        assert_eq!(cfg.reachable(), &[true, false, true]);
        assert_eq!(cfg.rpo(), &[0, 2, 1], "unreachable bb1 appended last");
    }

    #[test]
    fn bad_branch_target_rejected() {
        let mut jmp = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        jmp.branch_offset = 99;
        let instrs = vec![jmp, Instruction::new(Opcode::Eot, ExecSize::S1)];
        assert!(matches!(
            Cfg::from_instrs(&instrs),
            Err(DecodeError::BadBranchTarget { .. })
        ));
    }

    #[test]
    fn kernel_cfg_wraps_flattened_stream() {
        let k = loop_kernel();
        let kc = KernelCfg::new(&k).unwrap();
        assert_eq!(kc.cfg().num_blocks(), 2);
        assert_eq!(kc.flat.instrs.len(), 4);
    }
}
