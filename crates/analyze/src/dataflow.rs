//! A small worklist dataflow framework.
//!
//! Analyses implement [`Analysis`]: a fact lattice (`Fact` with a
//! `top` element and a `join`), a [`Direction`], a boundary fact for
//! the entry (forward) or exit blocks (backward), and a per-block
//! transfer function. [`solve`] iterates blocks to a fixpoint using a
//! worklist ordered by reverse post-order (forward) or its reverse
//! (backward), which reaches the fixpoint in a handful of sweeps for
//! reducible CFGs.

use crate::cfg::Cfg;

/// Which way facts flow through the CFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Facts propagate from predecessors to successors.
    Forward,
    /// Facts propagate from successors to predecessors.
    Backward,
}

/// A dataflow analysis over basic blocks.
pub trait Analysis {
    /// The lattice element attached to each block boundary.
    type Fact: Clone + PartialEq;

    /// Flow direction.
    fn direction(&self) -> Direction;

    /// Fact at the CFG boundary: the entry block's input (forward) or
    /// every exit block's output (backward).
    fn boundary(&self) -> Self::Fact;

    /// The neutral element of `join` — initial value for all facts.
    fn top(&self) -> Self::Fact;

    /// Merge `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;

    /// Push a fact through block `block`: input fact in, output fact
    /// out (in flow order — entry→exit for forward, exit→entry for
    /// backward).
    fn transfer(&self, cfg: &Cfg<'_>, block: usize, fact: &Self::Fact) -> Self::Fact;
}

/// A fixpoint solution: one fact pair per block.
#[derive(Debug)]
pub struct Solution<F> {
    /// Fact at each block's entry edge (in program order).
    pub entry: Vec<F>,
    /// Fact at each block's exit edge (in program order).
    pub exit: Vec<F>,
    /// Number of block transfers evaluated before the fixpoint.
    pub iterations: usize,
}

/// Run `analysis` to a fixpoint over `cfg`.
pub fn solve<A: Analysis>(cfg: &Cfg<'_>, analysis: &A) -> Solution<A::Fact> {
    let nb = cfg.num_blocks();
    let mut entry = vec![analysis.top(); nb];
    let mut exit = vec![analysis.top(); nb];
    let mut iterations = 0usize;

    // Process blocks in flow order: RPO for forward analyses, reverse
    // RPO for backward ones. `order_pos` maps block → queue priority.
    let forward = analysis.direction() == Direction::Forward;
    let order: Vec<usize> = if forward {
        cfg.rpo().to_vec()
    } else {
        cfg.rpo().iter().rev().copied().collect()
    };
    let mut order_pos = vec![0usize; nb];
    for (i, &b) in order.iter().enumerate() {
        order_pos[b] = i;
    }

    let mut in_queue = vec![true; nb];
    let mut queue = order.clone();
    while let Some(b) = queue.first().copied() {
        queue.remove(0);
        in_queue[b] = false;
        iterations += 1;

        if forward {
            let mut input = if cfg.preds(b).is_empty() || b == 0 {
                analysis.boundary()
            } else {
                analysis.top()
            };
            for &p in cfg.preds(b) {
                analysis.join(&mut input, &exit[p]);
            }
            entry[b] = input;
            let output = analysis.transfer(cfg, b, &entry[b]);
            if output != exit[b] {
                exit[b] = output;
                for &s in cfg.succs(b) {
                    if !in_queue[s] {
                        in_queue[s] = true;
                        let pos = queue
                            .iter()
                            .position(|&q| order_pos[q] > order_pos[s])
                            .unwrap_or(queue.len());
                        queue.insert(pos, s);
                    }
                }
            }
        } else {
            let mut output = if cfg.succs(b).is_empty() {
                analysis.boundary()
            } else {
                analysis.top()
            };
            for &s in cfg.succs(b) {
                analysis.join(&mut output, &entry[s]);
            }
            exit[b] = output;
            let input = analysis.transfer(cfg, b, &exit[b]);
            if input != entry[b] {
                entry[b] = input;
                for &p in cfg.preds(b) {
                    if !in_queue[p] {
                        in_queue[p] = true;
                        let pos = queue
                            .iter()
                            .position(|&q| order_pos[q] > order_pos[p])
                            .unwrap_or(queue.len());
                        queue.insert(pos, p);
                    }
                }
            }
        }
    }

    Solution {
        entry,
        exit,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use gen_isa::{ExecSize, Instruction, Opcode, Reg, Src};

    /// Forward may-analysis with a boolean fact: "is this block
    /// reachable from entry". Cross-checks `Cfg::reachable`, which is
    /// computed by DFS instead.
    struct Reachable;

    impl Analysis for Reachable {
        type Fact = bool;

        fn direction(&self) -> Direction {
            Direction::Forward
        }

        fn boundary(&self) -> bool {
            true
        }

        fn top(&self) -> bool {
            false
        }

        fn join(&self, into: &mut bool, from: &bool) -> bool {
            let before = *into;
            *into |= *from;
            *into != before
        }

        fn transfer(&self, _cfg: &Cfg<'_>, _block: usize, fact: &bool) -> bool {
            *fact
        }
    }

    #[test]
    fn dataflow_reachability_matches_dfs() {
        // 0: jmpi +2 (to 3) ; 1: add (dead) ; 2: jmpi -2 (to 1) ;
        // 3: eot — blocks {1,2} form an unreachable cycle.
        let mut j0 = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        j0.branch_offset = 2;
        let mut add = Instruction::new(Opcode::Add, ExecSize::S1);
        add.dst = Some(Reg(1));
        add.srcs = [Src::Reg(Reg(1)), Src::Imm(1), Src::Null];
        let mut j2 = Instruction::new(Opcode::Jmpi, ExecSize::S1);
        j2.branch_offset = -2;
        let eot = Instruction::new(Opcode::Eot, ExecSize::S1);
        let instrs = vec![j0, add, j2, eot];

        let cfg = Cfg::from_instrs(&instrs).unwrap();
        let sol = solve(&cfg, &Reachable);
        let via_dataflow: Vec<bool> = (0..cfg.num_blocks()).map(|b| sol.entry[b]).collect();
        assert_eq!(via_dataflow, cfg.reachable().to_vec());
        assert!(cfg.reachable().iter().any(|r| !r), "test has dead blocks");
    }
}
