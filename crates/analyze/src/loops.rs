//! Natural-loop detection and trip-count bounds.
//!
//! A backedge is a CFG edge `t → h` between reachable blocks where
//! `h` dominates `t`. The natural loop of head `h` is `h` plus every
//! block that reaches some backedge tail without passing through `h`.
//! Loops sharing a head are merged; nesting follows body inclusion
//! (the parent of a loop is the smallest loop strictly containing
//! it). Retreating edges whose target does *not* dominate the source
//! (irreducible control flow) form no natural loop — the value-range
//! layer handles them by havocking conservatively.
//!
//! Trip counts come from the canonical counted-loop shape the JIT
//! emits — an induction register stepped by `add r, r, #step`, a
//! `cmp` producing the flag, and the backedge `brc` predicated on
//! that flag — with initial and bound values taken from
//! [`crate::range::ValueRanges`], so a bound loaded into a register
//! before the loop still resolves when the range analysis proves it
//! constant.

use crate::cfg::Cfg;
use crate::dominators::Dominators;
use gen_isa::{CondMod, Opcode, Src};

/// How well the analysis pinned a loop's iteration count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TripCount {
    /// Proven exact body-execution count.
    Exact(u64),
    /// Proven upper bound (initial value or bound known only as an
    /// interval).
    AtMost(u64),
    /// The pattern did not match or the ranges were unbounded.
    Unknown,
}

impl TripCount {
    /// Whether the analysis proved anything at all.
    pub fn is_proven(&self) -> bool {
        !matches!(self, TripCount::Unknown)
    }

    /// The proven count or bound, if any.
    pub fn bound(&self) -> Option<u64> {
        match *self {
            TripCount::Exact(n) | TripCount::AtMost(n) => Some(n),
            TripCount::Unknown => None,
        }
    }
}

/// One natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Head (dominating) block.
    pub head: usize,
    /// Member blocks in ascending order; always contains `head`.
    pub body: Vec<usize>,
    /// Backedge tail blocks in ascending order.
    pub tails: Vec<usize>,
    /// Index of the smallest strictly-containing loop in
    /// [`LoopForest::loops`], if any.
    pub parent: Option<usize>,
    /// Nesting depth: 1 for an outermost loop.
    pub depth: u32,
    /// Iteration bound, filled in by [`LoopForest::resolve_trips`].
    pub trips: TripCount,
}

impl NaturalLoop {
    /// Whether `block` belongs to this loop's body.
    pub fn contains(&self, block: usize) -> bool {
        self.body.binary_search(&block).is_ok()
    }
}

/// Every natural loop of one CFG, plus per-block membership.
#[derive(Debug, Clone, Default)]
pub struct LoopForest {
    /// Loops ordered by ascending head block.
    pub loops: Vec<NaturalLoop>,
    /// Innermost loop index per block, if the block is in any loop.
    pub innermost: Vec<Option<usize>>,
}

impl LoopForest {
    /// Detect the natural loops of `cfg` using its dominator tree.
    /// Trip counts start [`TripCount::Unknown`]; call
    /// [`LoopForest::resolve_trips`] once ranges are available.
    pub fn compute(cfg: &Cfg<'_>, dom: &Dominators) -> LoopForest {
        let nb = cfg.num_blocks();
        // Backedge tails grouped per head.
        let mut tails_of: Vec<Vec<usize>> = vec![Vec::new(); nb];
        for t in 0..nb {
            if !cfg.reachable()[t] {
                continue;
            }
            for &h in cfg.succs(t) {
                if dom.dominates(h, t) {
                    tails_of[h].push(t);
                }
            }
        }

        let mut loops = Vec::new();
        for h in 0..nb {
            if tails_of[h].is_empty() {
                continue;
            }
            // Body: h plus everything reaching a tail backwards
            // without passing through h.
            let mut in_body = vec![false; nb];
            in_body[h] = true;
            let mut stack: Vec<usize> = Vec::new();
            for &t in &tails_of[h] {
                if !in_body[t] {
                    in_body[t] = true;
                    stack.push(t);
                }
            }
            while let Some(b) = stack.pop() {
                for &p in cfg.preds(b) {
                    if cfg.reachable()[p] && !in_body[p] {
                        in_body[p] = true;
                        stack.push(p);
                    }
                }
            }
            loops.push(NaturalLoop {
                head: h,
                body: (0..nb).filter(|&b| in_body[b]).collect(),
                tails: tails_of[h].clone(),
                parent: None,
                depth: 1,
                trips: TripCount::Unknown,
            });
        }

        // Nesting: parent = smallest strictly-larger loop containing
        // this loop's head. Heads are unique after merging, so body
        // inclusion reduces to head membership.
        for i in 0..loops.len() {
            let mut best: Option<usize> = None;
            for j in 0..loops.len() {
                if i == j || !loops[j].contains(loops[i].head) || loops[j].head == loops[i].head {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(k) => loops[j].body.len() < loops[k].body.len(),
                };
                if better {
                    best = Some(j);
                }
            }
            loops[i].parent = best;
        }
        for i in 0..loops.len() {
            let mut depth = 1u32;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p].parent;
            }
            loops[i].depth = depth;
        }

        // Innermost membership: smallest containing body, ties broken
        // by head for determinism.
        let mut innermost = vec![None; nb];
        for (b, slot) in innermost.iter_mut().enumerate() {
            for (i, l) in loops.iter().enumerate() {
                if !l.contains(b) {
                    continue;
                }
                let better = match *slot {
                    None => true,
                    Some(k) => {
                        let k: usize = k;
                        (l.body.len(), l.head) < (loops[k].body.len(), loops[k].head)
                    }
                };
                if better {
                    *slot = Some(i);
                }
            }
        }

        LoopForest { loops, innermost }
    }

    /// Total trip multiplier for `block`: the product of the trips of
    /// every loop containing it, with `Unknown` loops contributing
    /// `assumed` iterations. Saturates rather than wraps.
    pub fn block_trip_product(&self, block: usize, assumed: u64) -> u64 {
        let mut product = 1u64;
        let mut cur = self.innermost[block];
        while let Some(i) = cur {
            let l = &self.loops[i];
            let trips = l.trips.bound().unwrap_or(assumed).max(1);
            product = product.saturating_mul(trips);
            cur = l.parent;
        }
        product
    }

    /// Resolve trip counts via the counted-loop pattern.
    ///
    /// `entry_range_of(head, src)` must return the `[lo, hi]`
    /// interval of `src` at the *entry* of loop-head block `head` —
    /// the pre-havoc join over forward edges, so the induction
    /// variable's initial value and a register bound loaded before
    /// the loop both resolve. Immediates must map to exact
    /// singletons.
    pub fn resolve_trips(
        &mut self,
        cfg: &Cfg<'_>,
        entry_range_of: &dyn Fn(usize, Src) -> (u32, u32),
    ) {
        for l in &mut self.loops {
            l.trips = match_counted_loop(cfg, l, entry_range_of);
        }
    }
}

/// Match one loop against the canonical counted shape and bound its
/// trips. Conservative: any deviation yields `Unknown`.
fn match_counted_loop(
    cfg: &Cfg<'_>,
    l: &NaturalLoop,
    entry_range_of: &dyn Fn(usize, Src) -> (u32, u32),
) -> TripCount {
    // Single backedge whose tail ends in a predicated brc. The tail
    // runs on every iteration (it sources the backedge), which is
    // what lets a step instruction inside it count iterations.
    let [tail] = l.tails[..] else {
        return TripCount::Unknown;
    };
    let range = cfg.block_range(tail);
    let brc_at = range.end.wrapping_sub(1);
    let Some(brc) = cfg.instrs.get(brc_at) else {
        return TripCount::Unknown;
    };
    if brc.opcode != Opcode::Brc {
        return TripCount::Unknown;
    }
    let Some(pred) = brc.pred else {
        return TripCount::Unknown;
    };
    // Which edge continues the loop: the taken target, or the
    // fallthrough?
    let taken_block = brc
        .branch_target(brc_at)
        .map(|t| cfg.block_of(t))
        .unwrap_or(usize::MAX);
    let continue_on_true = if taken_block == l.head {
        true
    } else if tail + 1 == l.head {
        false
    } else {
        return TripCount::Unknown;
    };

    // The cmp producing the flag, searched backwards within the tail.
    let mut cmp_at = None;
    for i in range.clone().rev().skip(1) {
        let instr = &cfg.instrs[i];
        if instr.opcode == Opcode::Cmp && instr.flag == Some(pred.flag) {
            cmp_at = Some(i);
            break;
        }
    }
    let Some(cmp_at) = cmp_at else {
        return TripCount::Unknown;
    };
    let cmp = &cfg.instrs[cmp_at];
    let Some(cond) = cmp.cond else {
        return TripCount::Unknown;
    };
    let Src::Reg(ivar) = cmp.srcs[0] else {
        return TripCount::Unknown;
    };
    // A register bound must be loop-invariant for its entry range to
    // describe every iteration.
    if let Src::Reg(bound_reg) = cmp.srcs[1] {
        for &b in &l.body {
            for i in cfg.block_range(b) {
                if cfg.instrs[i].dst == Some(bound_reg) {
                    return TripCount::Unknown;
                }
            }
        }
    }

    // The induction step: exactly one write to `ivar` anywhere in the
    // loop, an unpredicated `add ivar, ivar, #step` in the tail block
    // (so it executes exactly once per iteration).
    let mut step_site: Option<(usize, u64)> = None;
    for &b in &l.body {
        for i in cfg.block_range(b) {
            let instr = &cfg.instrs[i];
            if instr.dst != Some(ivar) {
                continue;
            }
            if step_site.is_some()
                || b != tail
                || instr.opcode != Opcode::Add
                || instr.pred.is_some()
                || instr.srcs[0] != Src::Reg(ivar)
            {
                return TripCount::Unknown;
            }
            let Src::Imm(s) = instr.srcs[1] else {
                return TripCount::Unknown;
            };
            if s == 0 {
                return TripCount::Unknown;
            }
            step_site = Some((i, s as u64));
        }
    }
    let Some((add_at, step)) = step_site else {
        return TripCount::Unknown;
    };

    // Continue-condition on the compared value: `negate == false`
    // means the loop continues while `ivar cond bound` holds; the
    // predicate inversion and the exit-on-taken case both flip it.
    let negate = !(pred.invert ^ continue_on_true);
    let (init_lo, init_hi) = entry_range_of(l.head, Src::Reg(ivar));
    let (bound_lo, bound_hi) = entry_range_of(l.head, cmp.srcs[1]);

    // Value observed by the cmp at the k-th evaluation (k = 1, 2, …):
    // `first + (k-1)·step`, where `first` includes the step when the
    // add precedes the cmp in the tail.
    let stepped_first = add_at < cmp_at;
    let first_of = |init: u64| init + if stepped_first { step } else { 0 };
    // Reject wrap-around: the model walks in u64 but the machine
    // wraps in u32, so the walk must stay below 2³² until it crosses
    // the bound.
    let no_wrap = |bound: u64, slack: u64| bound + slack <= u32::MAX as u64 + 1;

    // Trips = smallest k whose evaluation fails the
    // continue-condition; the body always runs at least once (the
    // decision sits at the tail).
    let ceil_div = |a: u64, b: u64| a / b + u64::from(!a.is_multiple_of(b));
    let trips_from = |init: u64, bound: u64| -> Option<u64> {
        let first = first_of(init);
        match (cond, negate) {
            // while v < bound
            (CondMod::Lt, false) | (CondMod::Ge, true) => {
                if first >= bound {
                    Some(1)
                } else if no_wrap(bound, step) {
                    Some(1 + ceil_div(bound - first, step))
                } else {
                    None
                }
            }
            // while v <= bound
            (CondMod::Le, false) | (CondMod::Gt, true) => {
                if first > bound {
                    Some(1)
                } else if no_wrap(bound, step + 1) {
                    Some(1 + ceil_div(bound + 1 - first, step))
                } else {
                    None
                }
            }
            // while v != bound — bounded only when the walk hits it.
            (CondMod::Ne, false) | (CondMod::Eq, true) => {
                if bound < first || !(bound - first).is_multiple_of(step) {
                    None
                } else {
                    Some(1 + (bound - first) / step)
                }
            }
            _ => None,
        }
    };

    if init_lo == init_hi && bound_lo == bound_hi {
        match trips_from(init_lo as u64, bound_lo as u64) {
            Some(n) => TripCount::Exact(n),
            None => TripCount::Unknown,
        }
    } else if bound_hi == u32::MAX {
        // A bound interval reaching u32::MAX is TOP-ish: the "upper
        // bound" it would prove (≈2³² trips) is vacuous and would
        // swamp the cost model, so report Unknown and let the assumed
        // default apply.
        TripCount::Unknown
    } else {
        // Worst case over the intervals: the smallest initial value
        // against the largest bound runs longest.
        match trips_from(init_lo as u64, bound_hi as u64) {
            Some(n) => TripCount::AtMost(n),
            None => TripCount::Unknown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{ExecSize, FlagReg, KernelBinary, Reg, Terminator};

    /// entry(mov r2=0) → head(add r2+=1; cmp r2<8; brc head|exit) → exit.
    fn counted_loop(step: u32, bound: u32, cond: CondMod) -> KernelBinary {
        let mut b = KernelBuilder::new("counted");
        let entry = b.entry_block();
        let head = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(head));
        b.block_mut(head)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(step))
            .cmp(
                ExecSize::S1,
                cond,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Imm(bound),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        b.build().unwrap()
    }

    /// Ranges oracle for the fixture: r2 starts exact 0, immediates
    /// are exact, everything else TOP.
    fn fixture_ranges(_i: usize, src: Src) -> (u32, u32) {
        match src {
            Src::Imm(v) => (v, v),
            Src::Reg(Reg(2)) => (0, 0),
            _ => (0, u32::MAX),
        }
    }

    #[test]
    fn detects_loop_and_exact_trips() {
        let flat = counted_loop(1, 8, CondMod::Lt).flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let mut forest = LoopForest::compute(&cfg, &dom);
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.head, 1);
        assert_eq!(l.body, vec![1]);
        assert_eq!(l.tails, vec![1]);
        assert_eq!(l.depth, 1);
        assert_eq!(forest.innermost[0], None);
        assert_eq!(forest.innermost[1], Some(0));

        forest.resolve_trips(&cfg, &fixture_ranges);
        // r2 walks 1..=8; cmp sees 1,2,…; continues while < 8 → the
        // 8th evaluation (r2 = 8) exits. 8 trips.
        assert_eq!(forest.loops[0].trips, TripCount::Exact(8));
        assert_eq!(forest.block_trip_product(1, 16), 8);
        assert_eq!(forest.block_trip_product(0, 16), 1);
    }

    #[test]
    fn le_and_ne_conditions() {
        let flat = counted_loop(1, 8, CondMod::Le).flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let mut forest = LoopForest::compute(&cfg, &dom);
        forest.resolve_trips(&cfg, &fixture_ranges);
        assert_eq!(forest.loops[0].trips, TripCount::Exact(9));

        let flat = counted_loop(2, 8, CondMod::Ne).flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let mut forest = LoopForest::compute(&cfg, &dom);
        forest.resolve_trips(&cfg, &fixture_ranges);
        // r2 walks 2,4,6,8 → exits at the 4th evaluation.
        assert_eq!(forest.loops[0].trips, TripCount::Exact(4));
    }

    #[test]
    fn top_bound_interval_is_unknown_not_vacuous() {
        // Same shape but the bound lives in r3, which the oracle only
        // knows as TOP: no ≈2³² "bound", just Unknown.
        let mut b = KernelBuilder::new("topbound");
        let entry = b.entry_block();
        let head = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(head));
        b.block_mut(head)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Reg(Reg(3)),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let flat = b.build().unwrap().flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let mut forest = LoopForest::compute(&cfg, &dom);
        forest.resolve_trips(&cfg, &fixture_ranges);
        assert_eq!(forest.loops[0].trips, TripCount::Unknown);
    }

    #[test]
    fn unknown_when_shape_deviates() {
        let flat = counted_loop(1, 8, CondMod::Gt).flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let mut forest = LoopForest::compute(&cfg, &dom);
        forest.resolve_trips(&cfg, &fixture_ranges);
        // `while v > bound` with v counting up from 0: not a shape we
        // bound (it would either exit immediately or never).
        assert_eq!(forest.loops[0].trips, TripCount::Unknown);
    }
}
