//! # gtpin-analyze
//!
//! Static analysis for GEN kernel binaries: the correctness layer the
//! GT-Pin pipeline runs over every compiled and rewritten artifact.
//!
//! Four layers:
//!
//! * **Framework** — [`cfg::Cfg`] builds predecessor/successor maps,
//!   reverse post-order and reachability over a flattened instruction
//!   stream; [`dataflow::solve`] runs any [`dataflow::Analysis`] to a
//!   fixpoint with an RPO-ordered worklist. Concrete analyses:
//!   [`liveness::Liveness`] (backward, registers *and* flag
//!   registers, predication-aware) and [`reaching::ReachingDefs`]
//!   (forward, with synthetic entry definitions for the dispatch
//!   payload).
//! * **Structure & cost** — [`dominators::Dominators`] (iterative
//!   Cooper–Harvey–Kennedy), [`loops::LoopForest`] (natural loops,
//!   nesting, trip-count bounds), [`range::ValueRanges`] (unsigned
//!   interval analysis over GRF registers) and [`cost::StaticCost`]
//!   (per-category cycle pricing over the loop forest), aggregated
//!   per kernel by [`report::KernelReport`] with a deterministic
//!   digest. This is the static tier below interval replay: the
//!   pre-screening pass and `gtpin analyze` both consume it.
//! * **Lints** — [`lint::lint_kernel`] emits [`lint::Diagnostic`]s
//!   with stable `GTnnn` codes and severities, renderable for humans
//!   and serializable to JSON. See the code table in [`lint`].
//! * **Verifier** — [`verify::verify_rewrite`] proves a rewritten
//!   binary safe: original code intact, every probe inert (writes
//!   only reserved registers dead at its injection point, no control
//!   transfer, no app-memory traffic), every repaired branch mapped
//!   to its original target.
//!
//! The verifier is gated into the engine with `GTPIN_VERIFY=1` and
//! exposed on the CLI as `gtpin lint`.

pub mod bitset;
pub mod cfg;
pub mod cost;
pub mod dataflow;
pub mod dominators;
pub mod lint;
pub mod liveness;
pub mod loops;
pub mod range;
pub mod reaching;
pub mod report;
pub mod verify;

pub use bitset::{DefSet, RegSet};
pub use cfg::{Cfg, KernelCfg};
pub use cost::{BlockCost, CostParams, StaticCost};
pub use dataflow::{solve, Analysis, Direction, Solution};
pub use dominators::Dominators;
pub use lint::{lint_flat, lint_kernel, Diagnostic, LintCode, LintConfig, Severity};
pub use liveness::Liveness;
pub use loops::{LoopForest, NaturalLoop, TripCount};
pub use range::{Interval, ValueRanges};
pub use reaching::{Def, DefTarget, ReachingDefs};
pub use report::{analyze_kernel, analyze_kernels, KernelReport};
pub use verify::{is_probe, verify_rewrite, VerifyError, VerifyReport, Violation};
