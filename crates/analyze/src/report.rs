//! Per-kernel structural-analysis reports.
//!
//! [`analyze_kernel`] runs the full structural pipeline — CFG,
//! dominators, natural loops, value ranges, trip counts, static cost
//! — over one [`KernelBinary`] and aggregates the result into a
//! [`KernelReport`]: renderable as deterministic text, serializable
//! to JSON, and digestible with FNV-1a. [`analyze_kernels`] fans the
//! same computation over a program's kernels with
//! `gtpin_par::parallel_map`; results are collected in index order,
//! so the output (and therefore the digest) is bitwise identical at
//! any thread count.
//!
//! The report's `content_hash` is the FNV-1a of the kernel's encoded
//! bytes — the key `gtpin-serve` memoizes analyses under, so two
//! apps sharing a kernel body share one analysis.

use crate::cfg::Cfg;
use crate::cost::{self, CostParams, StaticCost};
use crate::dominators::Dominators;
use crate::loops::LoopForest;
use crate::range::{Interval, ValueRanges};
use gen_isa::{DecodeError, KernelBinary, OpcodeCategory, NUM_GRF};
use serde::json::{Number, Value};
use std::fmt::Write as _;

/// FNV-1a offset basis (the workspace-wide digest convention).
const FNV_BASIS: u64 = 0xCBF2_9CE4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a over a byte slice.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = FNV_BASIS;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One loop in the forest, report-shaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopReport {
    /// Head block.
    pub head: u32,
    /// Nesting depth (1 = outermost).
    pub depth: u32,
    /// Number of member blocks.
    pub blocks: u32,
    /// Backedge tail blocks.
    pub tails: Vec<u32>,
    /// Rendered trip count (`8`, `≤40`, or `?16` for assumed).
    pub trips: String,
}

/// Non-trivial register intervals at one block's entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockRanges {
    /// Block index.
    pub block: u32,
    /// `(register, interval)` rows for registers the analysis
    /// constrained below TOP, ascending register index.
    pub regs: Vec<(u8, Interval)>,
}

/// The full structural analysis of one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelReport {
    /// Kernel name.
    pub kernel: String,
    /// FNV-1a of the kernel's encoded bytes — the cross-request
    /// memoization key.
    pub content_hash: u64,
    /// Basic-block count.
    pub num_blocks: u32,
    /// Flat instruction count.
    pub num_instrs: u32,
    /// Loop forest, ascending head block.
    pub loops: Vec<LoopReport>,
    /// Value-range rows, ascending block; blocks with nothing proven
    /// are omitted.
    pub ranges: Vec<BlockRanges>,
    /// The static cost estimate.
    pub cost: StaticCost,
}

impl KernelReport {
    /// Deterministic text rendering — the bytes [`KernelReport::digest`]
    /// hashes.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "kernel {} hash={:016x} blocks={} instrs={} loops={}",
            self.kernel,
            self.content_hash,
            self.num_blocks,
            self.num_instrs,
            self.loops.len()
        );
        for l in &self.loops {
            let tails: Vec<String> = l.tails.iter().map(|t| format!("bb{t}")).collect();
            let _ = writeln!(
                out,
                "  loop head=bb{} depth={} blocks={} tails=[{}] trips={}",
                l.head,
                l.depth,
                l.blocks,
                tails.join(","),
                l.trips
            );
        }
        for r in &self.ranges {
            let _ = write!(out, "  ranges bb{}:", r.block);
            for (reg, iv) in &r.regs {
                let _ = write!(out, " r{reg}={iv}");
            }
            out.push('\n');
        }
        for b in &self.cost.blocks {
            let _ = writeln!(
                out,
                "  cost bb{} depth={} trips={}{} once={} total={}",
                b.block,
                b.depth,
                if b.proven { "" } else { "~" },
                b.trips,
                b.cycles_once,
                b.cycles_total
            );
        }
        let cats: Vec<String> = OpcodeCategory::ALL
            .iter()
            .map(|c| format!("{}={}", c.label(), self.cost.by_category[c.index()]))
            .collect();
        let _ = writeln!(
            out,
            "  cost total cycles={} static_instrs={} {}",
            self.cost.cycles_per_invocation,
            self.cost.static_instructions,
            cats.join(" ")
        );
        out
    }

    /// FNV-1a digest of the rendered report.
    pub fn digest(&self) -> u64 {
        fnv64(self.render().as_bytes())
    }

    /// JSON shape of the report.
    pub fn to_json(&self) -> Value {
        let loops = self
            .loops
            .iter()
            .map(|l| {
                Value::Obj(vec![
                    ("head".to_string(), Value::Num(Number::U(l.head as u64))),
                    ("depth".to_string(), Value::Num(Number::U(l.depth as u64))),
                    ("blocks".to_string(), Value::Num(Number::U(l.blocks as u64))),
                    (
                        "tails".to_string(),
                        Value::Arr(
                            l.tails
                                .iter()
                                .map(|&t| Value::Num(Number::U(t as u64)))
                                .collect(),
                        ),
                    ),
                    ("trips".to_string(), Value::Str(l.trips.clone())),
                ])
            })
            .collect();
        let ranges = self
            .ranges
            .iter()
            .map(|r| {
                Value::Obj(vec![
                    ("block".to_string(), Value::Num(Number::U(r.block as u64))),
                    (
                        "regs".to_string(),
                        Value::Obj(
                            r.regs
                                .iter()
                                .map(|(reg, iv)| {
                                    (
                                        format!("r{reg}"),
                                        Value::Arr(vec![
                                            Value::Num(Number::U(iv.lo as u64)),
                                            Value::Num(Number::U(iv.hi as u64)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let blocks = self
            .cost
            .blocks
            .iter()
            .map(|b| {
                Value::Obj(vec![
                    ("block".to_string(), Value::Num(Number::U(b.block as u64))),
                    ("depth".to_string(), Value::Num(Number::U(b.depth as u64))),
                    ("trips".to_string(), Value::Num(Number::U(b.trips))),
                    ("proven".to_string(), Value::Bool(b.proven)),
                    (
                        "cycles_once".to_string(),
                        Value::Num(Number::U(b.cycles_once)),
                    ),
                    (
                        "cycles_total".to_string(),
                        Value::Num(Number::U(b.cycles_total)),
                    ),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("kernel".to_string(), Value::Str(self.kernel.clone())),
            (
                "content_hash".to_string(),
                Value::Str(format!("{:016x}", self.content_hash)),
            ),
            (
                "blocks".to_string(),
                Value::Num(Number::U(self.num_blocks as u64)),
            ),
            (
                "instrs".to_string(),
                Value::Num(Number::U(self.num_instrs as u64)),
            ),
            ("loops".to_string(), Value::Arr(loops)),
            ("ranges".to_string(), Value::Arr(ranges)),
            (
                "cycles_per_invocation".to_string(),
                Value::Num(Number::U(self.cost.cycles_per_invocation)),
            ),
            (
                "static_instructions".to_string(),
                Value::Num(Number::U(self.cost.static_instructions)),
            ),
            ("cost_blocks".to_string(), Value::Arr(blocks)),
        ])
    }
}

/// Run the full structural pipeline over one kernel.
///
/// # Errors
///
/// Returns a [`DecodeError`] when the instruction stream is
/// structurally invalid (a branch target off the stream).
pub fn analyze_kernel(
    bin: &KernelBinary,
    params: &CostParams,
) -> Result<KernelReport, DecodeError> {
    let content_hash = fnv64(&bin.encode());
    let flat = bin.flatten();
    let cfg = Cfg::from_instrs(&flat.instrs)?;
    let dom = Dominators::compute(&cfg);
    let mut forest = LoopForest::compute(&cfg, &dom);
    let ranges = ValueRanges::compute(&cfg, &dom, &forest);
    let cost = cost::cost_with_ranges(&cfg, &dom, &mut forest, &ranges, params);

    let loops = forest
        .loops
        .iter()
        .map(|l| LoopReport {
            head: l.head as u32,
            depth: l.depth,
            blocks: l.body.len() as u32,
            tails: l.tails.iter().map(|&t| t as u32).collect(),
            trips: cost::trips_label(l.trips, params.assumed_trips),
        })
        .collect();

    let mut range_rows = Vec::new();
    for b in 0..cfg.num_blocks() {
        if !cfg.reachable()[b] {
            continue;
        }
        let entry = ranges.block_entry(b);
        let regs: Vec<(u8, Interval)> = (0..NUM_GRF)
            .filter(|&r| !entry[r as usize].is_top())
            .map(|r| (r, entry[r as usize]))
            .collect();
        if !regs.is_empty() {
            range_rows.push(BlockRanges {
                block: b as u32,
                regs,
            });
        }
    }

    Ok(KernelReport {
        kernel: bin.name.clone(),
        content_hash,
        num_blocks: cfg.num_blocks() as u32,
        num_instrs: flat.instrs.len() as u32,
        loops,
        ranges: range_rows,
        cost,
    })
}

/// Analyze every kernel of a program in parallel. Results come back
/// in input order regardless of `threads`, so renders and digests
/// are thread-count invariant.
///
/// # Errors
///
/// The first structurally invalid kernel (by input order) fails the
/// whole batch.
pub fn analyze_kernels(
    bins: &[KernelBinary],
    params: &CostParams,
    threads: usize,
) -> Result<Vec<KernelReport>, DecodeError> {
    gtpin_par::parallel_map(bins, threads, |_, bin| analyze_kernel(bin, params))
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Reg, Src, Terminator};

    fn params() -> CostParams {
        CostParams {
            frequency_hz: 1_000_000_000.0,
            issue_cycles: [1, 1, 2, 2, 16],
            extended_math_cycles: 6,
            send_bytes_per_cycle: 16,
            native_simd_lanes: 4,
            assumed_trips: 16,
        }
    }

    fn looped() -> KernelBinary {
        let mut b = KernelBuilder::new("looped");
        let entry = b.entry_block();
        let head = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(head));
        b.block_mut(head)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Imm(8),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        b.build().unwrap()
    }

    #[test]
    fn report_is_deterministic_and_digestible() {
        let bin = looped();
        let r1 = analyze_kernel(&bin, &params()).unwrap();
        let r2 = analyze_kernel(&bin, &params()).unwrap();
        assert_eq!(r1.render(), r2.render());
        assert_eq!(r1.digest(), r2.digest());
        assert_eq!(r1.loops.len(), 1);
        assert_eq!(r1.loops[0].trips, "8");
        let text = r1.render();
        assert!(text.contains("loop head=bb1"), "{text}");
        assert!(text.contains("trips=8"), "{text}");
        // JSON renders without panicking and mentions the kernel.
        let mut json = String::new();
        serde::json::render(&r1.to_json(), &mut json);
        assert!(json.contains("\"looped\""), "{json}");
    }

    #[test]
    fn batch_matches_serial_at_any_thread_count() {
        let bins: Vec<KernelBinary> = (0..6).map(|_| looped()).collect();
        let serial = analyze_kernels(&bins, &params(), 1).unwrap();
        for threads in 2..=8 {
            let par = analyze_kernels(&bins, &params(), threads).unwrap();
            assert_eq!(par.len(), serial.len());
            for (a, b) in par.iter().zip(&serial) {
                assert_eq!(a.render(), b.render());
            }
        }
    }
}
