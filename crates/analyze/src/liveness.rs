//! Backward liveness over GRF and flag registers.
//!
//! The analysis is deliberately conservative about predication: a
//! predicated write merges new lanes into the old value, so it both
//! *uses* its destination and does **not** kill it. Kills are
//! therefore under-approximated and the resulting deadness facts are
//! sound — when liveness says a register is dead at a point, no
//! execution reads it before an unpredicated redefinition. The
//! instrumentation-safety verifier ([`crate::verify`]) relies on
//! exactly that guarantee.

use crate::bitset::RegSet;
use crate::cfg::Cfg;
use crate::dataflow::{solve, Analysis, Direction};
use gen_isa::{Instruction, Opcode};

/// Registers and flags an instruction reads.
pub fn uses(instr: &Instruction) -> RegSet {
    let mut set = RegSet::EMPTY;
    for r in instr.reads() {
        set.insert_reg(r);
    }
    if let Some(p) = instr.pred {
        set.insert_flag(p.flag);
        // Inactive lanes keep the old destination value, so a
        // predicated write reads what it merges over.
        if let Some(d) = instr.dst {
            set.insert_reg(d);
        }
    }
    set
}

/// Registers and flags an instruction writes (whether or not the
/// write survives — see [`kills`] for the strong-update set).
pub fn defs(instr: &Instruction) -> RegSet {
    let mut set = RegSet::EMPTY;
    if let Some(d) = instr.dst {
        set.insert_reg(d);
    }
    // Only `cmp` writes its flag field; control opcodes carry `flag`
    // as a read (mirrored in `pred`).
    if instr.opcode == Opcode::Cmp {
        if let Some(f) = instr.flag {
            set.insert_flag(f);
        }
    }
    set
}

/// Definitions that fully overwrite their target: [`defs`] when the
/// instruction is unpredicated, empty otherwise.
pub fn kills(instr: &Instruction) -> RegSet {
    if instr.pred.is_none() {
        defs(instr)
    } else {
        RegSet::EMPTY
    }
}

struct LivenessAnalysis;

impl Analysis for LivenessAnalysis {
    type Fact = RegSet;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn boundary(&self) -> RegSet {
        RegSet::EMPTY
    }

    fn top(&self) -> RegSet {
        RegSet::EMPTY
    }

    fn join(&self, into: &mut RegSet, from: &RegSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, cfg: &Cfg<'_>, block: usize, fact: &RegSet) -> RegSet {
        let mut live = *fact;
        for i in cfg.block_range(block).rev() {
            let instr = &cfg.instrs[i];
            live.subtract(&kills(instr));
            live.union_with(&uses(instr));
        }
        live
    }
}

/// Liveness facts at block and instruction granularity.
#[derive(Debug)]
pub struct Liveness {
    /// Live set at each block entry.
    pub block_in: Vec<RegSet>,
    /// Live set at each block exit.
    pub block_out: Vec<RegSet>,
    /// Live set just before each instruction.
    pub live_in: Vec<RegSet>,
    /// Live set just after each instruction.
    pub live_out: Vec<RegSet>,
}

impl Liveness {
    /// Solve liveness over `cfg` and refine to per-instruction facts.
    pub fn compute(cfg: &Cfg<'_>) -> Liveness {
        let sol = solve(cfg, &LivenessAnalysis);
        let n = cfg.instrs.len();
        let mut live_in = vec![RegSet::EMPTY; n];
        let mut live_out = vec![RegSet::EMPTY; n];
        for b in 0..cfg.num_blocks() {
            let mut live = sol.exit[b];
            for i in cfg.block_range(b).rev() {
                live_out[i] = live;
                let instr = &cfg.instrs[i];
                live.subtract(&kills(instr));
                live.union_with(&uses(instr));
                live_in[i] = live;
            }
        }
        Liveness {
            block_in: sol.entry,
            block_out: sol.exit,
            live_in,
            live_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Predicate, Reg, Src, Surface, Terminator};

    #[test]
    fn straight_line_liveness() {
        // r2 = r1 + 1 ; r3 = r2 * r2 ; store r3 ; eot
        let mut b = KernelBuilder::new("line");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S8, Reg(2), Src::Reg(Reg(1)), Src::Imm(1))
            .mul(ExecSize::S8, Reg(3), Src::Reg(Reg(2)), Src::Reg(Reg(2)))
            .send_write(ExecSize::S8, Reg(4), Reg(3), Surface::Global, 32)
            .eot();
        let k = b.build().unwrap();
        let flat = k.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let lv = Liveness::compute(&cfg);

        // r1 is live on entry; r2 dies after the mul; r3 dies after
        // the send; nothing is live at eot.
        assert!(lv.live_in[0].contains_reg(Reg(1)));
        assert!(!lv.live_in[0].contains_reg(Reg(2)));
        assert!(lv.live_out[0].contains_reg(Reg(2)));
        assert!(!lv.live_out[1].contains_reg(Reg(2)));
        assert!(lv.live_out[1].contains_reg(Reg(3)));
        assert!(lv.live_out[2].is_empty() || !lv.live_out[2].contains_reg(Reg(3)));
    }

    #[test]
    fn loop_carries_liveness_around_backedge() {
        // bb0: r1 += 1 ; cmp f0 = r1 < r2 ; brc bb0 | bb1 ; bb1: eot
        let mut b = KernelBuilder::new("loop");
        let head = b.entry_block();
        let exit = b.new_block();
        b.block_mut(head)
            .add(ExecSize::S1, Reg(1), Src::Reg(Reg(1)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Reg(Reg(2)),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let k = b.build().unwrap();
        let flat = k.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let lv = Liveness::compute(&cfg);

        // The loop bound r2 and counter r1 stay live around the
        // backedge; f0 is live between the cmp and the brc but dead at
        // block entry (cmp fully redefines it).
        assert!(lv.block_in[0].contains_reg(Reg(1)));
        assert!(lv.block_in[0].contains_reg(Reg(2)));
        assert!(!lv.block_in[0].contains_flag(FlagReg::F0));
        let cmp_idx = 1;
        assert!(lv.live_out[cmp_idx].contains_flag(FlagReg::F0));
    }

    #[test]
    fn predicated_write_does_not_kill() {
        // (+f0) mov r5, 7 ; store r5 — r5 must be live on entry
        // because inactive lanes keep its old value.
        let mut b = KernelBuilder::new("pred");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S8, Reg(5), Src::Imm(7))
            .send_write(ExecSize::S8, Reg(6), Reg(5), Surface::Global, 32)
            .eot();
        let mut k = b.build().unwrap();
        k.blocks[0].instrs[0].pred = Some(Predicate {
            flag: FlagReg::F0,
            invert: false,
        });
        let flat = k.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let lv = Liveness::compute(&cfg);
        assert!(lv.live_in[0].contains_reg(Reg(5)), "merge semantics");
        assert!(lv.live_in[0].contains_flag(FlagReg::F0));

        // Unpredicated, the mov kills r5.
        k.blocks[0].instrs[0].pred = None;
        let flat = k.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let lv = Liveness::compute(&cfg);
        assert!(!lv.live_in[0].contains_reg(Reg(5)));
    }
}
