//! Kernel lints with stable codes and severities.
//!
//! Each diagnostic carries a stable `GTnnn` code so tooling can
//! filter and track them across versions:
//!
//! | code  | severity | meaning                                        |
//! |-------|----------|------------------------------------------------|
//! | GT000 | error    | structural validation failure                  |
//! | GT001 | warning  | register read with no reaching definition      |
//! | GT002 | warning  | register write never read                      |
//! | GT003 | warning  | basic block unreachable from entry             |
//! | GT004 | error    | no `eot` reachable from entry                  |
//! | GT005 | error    | send byte count exceeds the descriptor limit   |
//! | GT006 | warning  | predicated exec width exceeds producing `cmp`  |
//!
//! Diagnostics render as `severity[code] kernel bbN instr I: message`
//! for humans and serialize to JSON objects for machines.

use crate::bitset::RegSet;
use crate::cfg::Cfg;
use crate::liveness::Liveness;
use crate::reaching::{DefTarget, ReachingDefs};
use gen_isa::validate::validate_all;
use gen_isa::{DecodeError, KernelBinary, KernelMetadata, Opcode, Reg, SendDescriptor};
use serde::json::{Number, Value};
use serde::Serialize;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not certainly wrong.
    Warning,
    /// The kernel is broken; the CLI exits nonzero.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable lint codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// Structural validation failure (see [`gen_isa::validate`]).
    Structural,
    /// A register is read with no reaching definition on any path.
    UninitializedRead,
    /// A register write is never read before being overwritten.
    DeadWrite,
    /// A basic block is unreachable from the entry block.
    UnreachableBlock,
    /// No `eot` instruction is reachable from entry: the kernel can
    /// never end its thread.
    EotUnreachable,
    /// A send descriptor's byte count exceeds
    /// [`SendDescriptor::MAX_BYTES`].
    SendBytesOverflow,
    /// A predicated instruction is wider than every `cmp` that can
    /// produce its flag, so the high lanes run on stale flag bits.
    ExecPredWidthMismatch,
}

impl LintCode {
    /// The stable `GTnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Structural => "GT000",
            LintCode::UninitializedRead => "GT001",
            LintCode::DeadWrite => "GT002",
            LintCode::UnreachableBlock => "GT003",
            LintCode::EotUnreachable => "GT004",
            LintCode::SendBytesOverflow => "GT005",
            LintCode::ExecPredWidthMismatch => "GT006",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::Structural | LintCode::EotUnreachable | LintCode::SendBytesOverflow => {
                Severity::Error
            }
            LintCode::UninitializedRead
            | LintCode::DeadWrite
            | LintCode::UnreachableBlock
            | LintCode::ExecPredWidthMismatch => Severity::Warning,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Kernel name the finding belongs to.
    pub kernel: String,
    /// Basic block, when the finding is block-scoped.
    pub block: Option<u32>,
    /// Flattened instruction index, when instruction-scoped.
    pub instr: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(code: LintCode, kernel: &str, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            kernel: kernel.to_string(),
            block: None,
            instr: None,
            message,
        }
    }

    fn at(mut self, block: u32, instr: Option<usize>) -> Diagnostic {
        self.block = Some(block);
        self.instr = instr;
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}",
            self.severity.label(),
            self.code.code(),
            self.kernel
        )?;
        if let Some(b) = self.block {
            write!(f, " bb{b}")?;
        }
        if let Some(i) = self.instr {
            write!(f, " instr {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Serialize for Diagnostic {
    fn to_json(&self) -> Value {
        let mut obj = vec![
            ("code".to_string(), Value::Str(self.code.code().to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.label().to_string()),
            ),
            ("kernel".to_string(), Value::Str(self.kernel.clone())),
        ];
        if let Some(b) = self.block {
            obj.push(("block".to_string(), Value::Num(Number::U(u64::from(b)))));
        }
        if let Some(i) = self.instr {
            obj.push(("instr".to_string(), Value::Num(Number::U(i as u64))));
        }
        obj.push(("message".to_string(), Value::Str(self.message.clone())));
        Value::Obj(obj)
    }
}

/// What the linter may assume about kernel entry state.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Registers (and flags) defined before the first instruction
    /// runs — the dispatch payload.
    pub entry_defined: RegSet,
}

impl LintConfig {
    /// Entry state implied by kernel metadata: the thread-id register
    /// `r0` plus one argument register per declared argument,
    /// following the dispatch convention (arguments start at `r1`).
    pub fn for_metadata(metadata: &KernelMetadata) -> LintConfig {
        let mut entry_defined = RegSet::EMPTY;
        entry_defined.insert_reg(Reg(0));
        for a in 0..metadata.num_args {
            entry_defined.insert_reg(Reg(1 + a));
        }
        LintConfig { entry_defined }
    }
}

/// Lint a structured kernel: structural validation first (as `GT000`
/// errors), then the dataflow lints over the flattened stream.
///
/// # Errors
///
/// Returns [`DecodeError`] only when the flattened stream has a
/// branch outside the stream — a structural corruption the `GT000`
/// pass cannot express.
pub fn lint_kernel(
    kernel: &KernelBinary,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, DecodeError> {
    let mut diags: Vec<Diagnostic> = validate_all(kernel)
        .into_iter()
        .map(|e| Diagnostic::new(LintCode::Structural, &kernel.name, e.to_string()))
        .collect();
    if !diags.is_empty() {
        // Structural breakage makes dataflow facts meaningless; stop
        // at GT000 like a compiler stops at parse errors.
        return Ok(diags);
    }
    let flat = kernel.flatten();
    diags.extend(lint_flat(&kernel.name, &flat.instrs, config)?);
    Ok(diags)
}

/// Lint a flattened instruction stream.
///
/// # Errors
///
/// Returns [`DecodeError`] when a branch targets an index outside the
/// stream.
pub fn lint_flat(
    kernel: &str,
    instrs: &[gen_isa::Instruction],
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, DecodeError> {
    let cfg = Cfg::from_instrs(instrs)?;
    let liveness = Liveness::compute(&cfg);
    let reaching = ReachingDefs::compute(&cfg, &config.entry_defined);
    let mut diags = Vec::new();

    // GT003 — unreachable blocks.
    for b in 0..cfg.num_blocks() {
        if !cfg.reachable()[b] {
            diags.push(
                Diagnostic::new(
                    LintCode::UnreachableBlock,
                    kernel,
                    format!("basic block bb{b} is unreachable from entry"),
                )
                .at(b as u32, None),
            );
        }
    }

    // GT004 — no reachable eot.
    let eot_reachable = (0..cfg.num_blocks())
        .any(|b| cfg.reachable()[b] && cfg.block_range(b).any(|i| instrs[i].opcode == Opcode::Eot));
    if !eot_reachable {
        diags.push(Diagnostic::new(
            LintCode::EotUnreachable,
            kernel,
            "no eot instruction is reachable from entry; the kernel never ends its thread"
                .to_string(),
        ));
    }

    for b in 0..cfg.num_blocks() {
        let reachable = cfg.reachable()[b];
        for i in cfg.block_range(b) {
            let instr = &instrs[i];

            // GT005 — descriptor byte overflow (even in dead code:
            // the encoder would truncate it).
            if let Some(desc) = instr.send {
                if desc.bytes > SendDescriptor::MAX_BYTES {
                    diags.push(
                        Diagnostic::new(
                            LintCode::SendBytesOverflow,
                            kernel,
                            format!(
                                "send transfers {} bytes, above the descriptor limit of {}",
                                desc.bytes,
                                SendDescriptor::MAX_BYTES
                            ),
                        )
                        .at(b as u32, Some(i)),
                    );
                }
            }

            if !reachable {
                // Dataflow facts on unreachable code are vacuous;
                // GT003 already covers the block.
                continue;
            }

            // GT001 — reads with no reaching definition.
            for r in instr.reads() {
                if !reaching.is_defined(i, DefTarget::Grf(r)) {
                    diags.push(
                        Diagnostic::new(
                            LintCode::UninitializedRead,
                            kernel,
                            format!("{r} is read but never written on any path from entry"),
                        )
                        .at(b as u32, Some(i)),
                    );
                }
            }
            if let Some(p) = instr.pred {
                if !reaching.is_defined(i, DefTarget::Flag(p.flag)) {
                    diags.push(
                        Diagnostic::new(
                            LintCode::UninitializedRead,
                            kernel,
                            format!(
                                "predicate flag {} is read but no cmp defines it on any path",
                                p.flag
                            ),
                        )
                        .at(b as u32, Some(i)),
                    );
                }
            }

            // GT002 — writes never read. Sends are skipped: even a
            // dead-looking send has memory side effects.
            if !instr.opcode.is_send() {
                if let Some(d) = instr.dst {
                    if !liveness.live_out[i].contains_reg(d) {
                        diags.push(
                            Diagnostic::new(
                                LintCode::DeadWrite,
                                kernel,
                                format!("{d} is written but never read afterwards"),
                            )
                            .at(b as u32, Some(i)),
                        );
                    }
                }
            }

            // GT006 — predicated width wider than every producing cmp.
            if let Some(p) = instr.pred {
                let producer_lanes = reaching
                    .defs_of(i, DefTarget::Flag(p.flag))
                    .filter_map(|d| d.site)
                    .map(|s| instrs[s].exec_size.lanes())
                    .max();
                if let Some(max_lanes) = producer_lanes {
                    if instr.exec_size.lanes() > max_lanes {
                        diags.push(
                            Diagnostic::new(
                                LintCode::ExecPredWidthMismatch,
                                kernel,
                                format!(
                                    "exec width {} exceeds the {}-lane cmp producing {}; high lanes use stale flag bits",
                                    instr.exec_size.lanes(),
                                    max_lanes,
                                    p.flag
                                ),
                            )
                            .at(b as u32, Some(i)),
                        );
                    }
                }
            }
        }
    }

    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Predicate, Src, Surface, Terminator};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_kernel_has_no_diagnostics() {
        let mut b = KernelBuilder::new("clean");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S8, Reg(16), Src::Reg(Reg(1)), Src::Imm(1))
            .send_write(ExecSize::S8, Reg(1), Reg(16), Surface::Global, 32)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uninitialized_read_warns() {
        let mut b = KernelBuilder::new("uninit");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(9)), Src::Imm(1))
            .send_write(ExecSize::S1, Reg(1), Reg(2), Surface::Global, 4)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT001"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("r9"), "{}", diags[0].message);
    }

    #[test]
    fn dead_write_warns() {
        let mut b = KernelBuilder::new("dead");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S1, Reg(2), Src::Imm(7))
            .mov(ExecSize::S1, Reg(2), Src::Imm(8))
            .send_write(ExecSize::S1, Reg(1), Reg(2), Surface::Global, 4)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT002"]);
        assert_eq!(diags[0].instr, Some(0), "the first mov is dead");
    }

    #[test]
    fn unreachable_block_and_eot_lints() {
        // entry jumps straight to exit; a middle block is orphaned.
        let mut b = KernelBuilder::new("orphan");
        let entry = b.entry_block();
        let orphan = b.new_block();
        let exit = b.new_block();
        b.set_terminator(entry, Terminator::Jump(exit));
        b.block_mut(orphan).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(orphan, Terminator::Jump(exit));
        b.block_mut(exit).eot();
        let k = b.build().unwrap();
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT003"]);
    }

    #[test]
    fn eot_unreachable_is_an_error() {
        // Single block ending in an unconditional self-loop: no eot
        // anywhere.
        let mut b = KernelBuilder::new("spin");
        let bb = b.entry_block();
        b.block_mut(bb).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(bb, Terminator::Jump(bb));
        let k = b.build().unwrap();
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT004"), "{diags:?}");
        let gt004 = diags.iter().find(|d| d.code == LintCode::EotUnreachable);
        assert_eq!(gt004.unwrap().severity, Severity::Error);
    }

    #[test]
    fn send_bytes_overflow_is_an_error() {
        let mut b = KernelBuilder::new("big");
        let bb = b.entry_block();
        b.block_mut(bb)
            .send_read(
                ExecSize::S1,
                Reg(2),
                Reg(1),
                Surface::Global,
                SendDescriptor::MAX_BYTES + 1,
            )
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT005"), "{diags:?}");
    }

    #[test]
    fn exec_pred_width_mismatch_warns() {
        // cmp at 4 lanes, predicated use at 16 lanes.
        let mut b = KernelBuilder::new("width");
        let bb = b.entry_block();
        b.block_mut(bb)
            .cmp(
                ExecSize::S4,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Imm(10),
            )
            .mov(ExecSize::S16, Reg(2), Src::Imm(1))
            .send_write(ExecSize::S16, Reg(1), Reg(2), Surface::Global, 64)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        k.blocks[0].instrs[1].pred = Some(Predicate {
            flag: FlagReg::F0,
            invert: false,
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT006"), "{diags:?}");
        // Same widths → no warning.
        k.blocks[0].instrs[1].exec_size = ExecSize::S4;
        k.blocks[0].instrs[2].exec_size = ExecSize::S4;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT006"), "{diags:?}");
    }

    #[test]
    fn structural_errors_short_circuit_as_gt000() {
        let k = KernelBinary {
            name: "bad".into(),
            blocks: vec![],
            metadata: KernelMetadata::default(),
        };
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT000"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn diagnostics_render_and_serialize() {
        let d = Diagnostic::new(
            LintCode::UninitializedRead,
            "k",
            "r9 is read but never written on any path from entry".to_string(),
        )
        .at(0, Some(3));
        assert_eq!(
            d.to_string(),
            "warning[GT001] k bb0 instr 3: r9 is read but never written on any path from entry"
        );
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"code\":\"GT001\""), "{json}");
        assert!(json.contains("\"severity\":\"warning\""), "{json}");
        assert!(json.contains("\"instr\":3"), "{json}");
    }

    #[test]
    fn predicate_without_producer_warns_uninitialized() {
        let mut b = KernelBuilder::new("noflag");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S1, Reg(2), Src::Imm(1))
            .send_write(ExecSize::S1, Reg(1), Reg(2), Surface::Global, 4)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        k.blocks[0].instrs[0].pred = Some(Predicate {
            flag: FlagReg::F1,
            invert: false,
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::UninitializedRead && d.message.contains("f1")),
            "{diags:?}"
        );
    }
}
