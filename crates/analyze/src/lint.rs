//! Kernel lints with stable codes and severities.
//!
//! Each diagnostic carries a stable `GTnnn` code so tooling can
//! filter and track them across versions:
//!
//! | code  | severity | meaning                                        |
//! |-------|----------|------------------------------------------------|
//! | GT000 | error    | structural validation failure                  |
//! | GT001 | warning  | register read with no reaching definition      |
//! | GT002 | warning  | register write never read                      |
//! | GT003 | warning  | basic block unreachable from entry             |
//! | GT004 | error    | no `eot` reachable from entry                  |
//! | GT005 | error    | send byte count exceeds the descriptor limit   |
//! | GT006 | warning  | predicated exec width exceeds producing `cmp`  |
//! | GT007 | warning  | loop-invariant send repeats one message        |
//! | GT008 | warning  | loop has no exit edge and no `eot`/`ret`       |
//! | GT009 | warning  | loop-carried write dead on every loop exit     |
//! | GT010 | warning  | exec width narrows inside a divergent loop     |
//! | GT011 | warning  | proven trips × send bytes overflow descriptor  |
//!
//! GT007–GT011 are powered by the structural layer (dominators,
//! natural loops, value ranges); GT011 tightens the per-message
//! GT005 bound to the *cumulative* traffic of a loop whose trip
//! count the range analysis proved.
//!
//! Diagnostics render as `severity[code] kernel bbN instr I: message`
//! for humans and serialize to JSON objects for machines.

use crate::bitset::RegSet;
use crate::cfg::Cfg;
use crate::dominators::Dominators;
use crate::liveness::Liveness;
use crate::loops::{LoopForest, TripCount};
use crate::range::ValueRanges;
use crate::reaching::{DefTarget, ReachingDefs};
use gen_isa::validate::validate_all;
use gen_isa::{DecodeError, KernelBinary, KernelMetadata, Opcode, Reg, SendDescriptor};
use serde::json::{Number, Value};
use serde::Serialize;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not certainly wrong.
    Warning,
    /// The kernel is broken; the CLI exits nonzero.
    Error,
}

impl Severity {
    /// Lowercase label used in rendered diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Stable lint codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LintCode {
    /// Structural validation failure (see [`gen_isa::validate`]).
    Structural,
    /// A register is read with no reaching definition on any path.
    UninitializedRead,
    /// A register write is never read before being overwritten.
    DeadWrite,
    /// A basic block is unreachable from the entry block.
    UnreachableBlock,
    /// No `eot` instruction is reachable from entry: the kernel can
    /// never end its thread.
    EotUnreachable,
    /// A send descriptor's byte count exceeds
    /// [`SendDescriptor::MAX_BYTES`].
    SendBytesOverflow,
    /// A predicated instruction is wider than every `cmp` that can
    /// produce its flag, so the high lanes run on stale flag bits.
    ExecPredWidthMismatch,
    /// A send inside a loop whose operands (and predicate) are all
    /// loop-invariant: the identical message repeats every iteration
    /// and could be hoisted.
    LoopInvariantSend,
    /// A natural loop with no edge leaving its body and no `eot` or
    /// `ret` inside: once entered, the thread can never leave.
    BackedgeNoExitCond,
    /// An unpredicated register write inside a loop whose value is
    /// dead on every loop-exit edge: the loop-carried work never
    /// escapes the loop.
    DeadLoopWrite,
    /// An instruction narrower than the `cmp` steering a divergent
    /// loop's backedge: the dropped lanes silently stop
    /// participating.
    NarrowingInDivergentLoop,
    /// A loop with a range-proven trip count whose cumulative send
    /// traffic (trips × bytes) overflows the descriptor limit, even
    /// though each individual message is within bounds.
    RangeProvenSendOverflow,
}

impl LintCode {
    /// The stable `GTnnn` code string.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::Structural => "GT000",
            LintCode::UninitializedRead => "GT001",
            LintCode::DeadWrite => "GT002",
            LintCode::UnreachableBlock => "GT003",
            LintCode::EotUnreachable => "GT004",
            LintCode::SendBytesOverflow => "GT005",
            LintCode::ExecPredWidthMismatch => "GT006",
            LintCode::LoopInvariantSend => "GT007",
            LintCode::BackedgeNoExitCond => "GT008",
            LintCode::DeadLoopWrite => "GT009",
            LintCode::NarrowingInDivergentLoop => "GT010",
            LintCode::RangeProvenSendOverflow => "GT011",
        }
    }

    /// The fixed severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::Structural | LintCode::EotUnreachable | LintCode::SendBytesOverflow => {
                Severity::Error
            }
            LintCode::UninitializedRead
            | LintCode::DeadWrite
            | LintCode::UnreachableBlock
            | LintCode::ExecPredWidthMismatch
            | LintCode::LoopInvariantSend
            | LintCode::BackedgeNoExitCond
            | LintCode::DeadLoopWrite
            | LintCode::NarrowingInDivergentLoop
            | LintCode::RangeProvenSendOverflow => Severity::Warning,
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: LintCode,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// Kernel name the finding belongs to.
    pub kernel: String,
    /// Basic block, when the finding is block-scoped.
    pub block: Option<u32>,
    /// Flattened instruction index, when instruction-scoped.
    pub instr: Option<usize>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    fn new(code: LintCode, kernel: &str, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            kernel: kernel.to_string(),
            block: None,
            instr: None,
            message,
        }
    }

    fn at(mut self, block: u32, instr: Option<usize>) -> Diagnostic {
        self.block = Some(block);
        self.instr = instr;
        self
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}",
            self.severity.label(),
            self.code.code(),
            self.kernel
        )?;
        if let Some(b) = self.block {
            write!(f, " bb{b}")?;
        }
        if let Some(i) = self.instr {
            write!(f, " instr {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Serialize for Diagnostic {
    fn to_json(&self) -> Value {
        let mut obj = vec![
            ("code".to_string(), Value::Str(self.code.code().to_string())),
            (
                "severity".to_string(),
                Value::Str(self.severity.label().to_string()),
            ),
            ("kernel".to_string(), Value::Str(self.kernel.clone())),
        ];
        if let Some(b) = self.block {
            obj.push(("block".to_string(), Value::Num(Number::U(u64::from(b)))));
        }
        if let Some(i) = self.instr {
            obj.push(("instr".to_string(), Value::Num(Number::U(i as u64))));
        }
        obj.push(("message".to_string(), Value::Str(self.message.clone())));
        Value::Obj(obj)
    }
}

/// What the linter may assume about kernel entry state.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Registers (and flags) defined before the first instruction
    /// runs — the dispatch payload.
    pub entry_defined: RegSet,
}

impl LintConfig {
    /// Entry state implied by kernel metadata: the thread-id register
    /// `r0` plus one argument register per declared argument,
    /// following the dispatch convention (arguments start at `r1`).
    pub fn for_metadata(metadata: &KernelMetadata) -> LintConfig {
        let mut entry_defined = RegSet::EMPTY;
        entry_defined.insert_reg(Reg(0));
        for a in 0..metadata.num_args {
            entry_defined.insert_reg(Reg(1 + a));
        }
        LintConfig { entry_defined }
    }
}

/// Lint a structured kernel: structural validation first (as `GT000`
/// errors), then the dataflow lints over the flattened stream.
///
/// # Errors
///
/// Returns [`DecodeError`] only when the flattened stream has a
/// branch outside the stream — a structural corruption the `GT000`
/// pass cannot express.
pub fn lint_kernel(
    kernel: &KernelBinary,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, DecodeError> {
    let mut diags: Vec<Diagnostic> = validate_all(kernel)
        .into_iter()
        .map(|e| Diagnostic::new(LintCode::Structural, &kernel.name, e.to_string()))
        .collect();
    if !diags.is_empty() {
        // Structural breakage makes dataflow facts meaningless; stop
        // at GT000 like a compiler stops at parse errors.
        return Ok(diags);
    }
    let flat = kernel.flatten();
    diags.extend(lint_flat(&kernel.name, &flat.instrs, config)?);
    Ok(diags)
}

/// Lint a flattened instruction stream.
///
/// # Errors
///
/// Returns [`DecodeError`] when a branch targets an index outside the
/// stream.
pub fn lint_flat(
    kernel: &str,
    instrs: &[gen_isa::Instruction],
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, DecodeError> {
    let cfg = Cfg::from_instrs(instrs)?;
    let liveness = Liveness::compute(&cfg);
    let reaching = ReachingDefs::compute(&cfg, &config.entry_defined);
    let mut diags = Vec::new();

    // GT003 — unreachable blocks.
    for b in 0..cfg.num_blocks() {
        if !cfg.reachable()[b] {
            diags.push(
                Diagnostic::new(
                    LintCode::UnreachableBlock,
                    kernel,
                    format!("basic block bb{b} is unreachable from entry"),
                )
                .at(b as u32, None),
            );
        }
    }

    // GT004 — no reachable eot.
    let eot_reachable = (0..cfg.num_blocks())
        .any(|b| cfg.reachable()[b] && cfg.block_range(b).any(|i| instrs[i].opcode == Opcode::Eot));
    if !eot_reachable {
        diags.push(Diagnostic::new(
            LintCode::EotUnreachable,
            kernel,
            "no eot instruction is reachable from entry; the kernel never ends its thread"
                .to_string(),
        ));
    }

    for b in 0..cfg.num_blocks() {
        let reachable = cfg.reachable()[b];
        for i in cfg.block_range(b) {
            let instr = &instrs[i];

            // GT005 — descriptor byte overflow (even in dead code:
            // the encoder would truncate it).
            if let Some(desc) = instr.send {
                if desc.bytes > SendDescriptor::MAX_BYTES {
                    diags.push(
                        Diagnostic::new(
                            LintCode::SendBytesOverflow,
                            kernel,
                            format!(
                                "send transfers {} bytes, above the descriptor limit of {}",
                                desc.bytes,
                                SendDescriptor::MAX_BYTES
                            ),
                        )
                        .at(b as u32, Some(i)),
                    );
                }
            }

            if !reachable {
                // Dataflow facts on unreachable code are vacuous;
                // GT003 already covers the block.
                continue;
            }

            // GT001 — reads with no reaching definition.
            for r in instr.reads() {
                if !reaching.is_defined(i, DefTarget::Grf(r)) {
                    diags.push(
                        Diagnostic::new(
                            LintCode::UninitializedRead,
                            kernel,
                            format!("{r} is read but never written on any path from entry"),
                        )
                        .at(b as u32, Some(i)),
                    );
                }
            }
            if let Some(p) = instr.pred {
                if !reaching.is_defined(i, DefTarget::Flag(p.flag)) {
                    diags.push(
                        Diagnostic::new(
                            LintCode::UninitializedRead,
                            kernel,
                            format!(
                                "predicate flag {} is read but no cmp defines it on any path",
                                p.flag
                            ),
                        )
                        .at(b as u32, Some(i)),
                    );
                }
            }

            // GT002 — writes never read. Sends are skipped: even a
            // dead-looking send has memory side effects.
            if !instr.opcode.is_send() {
                if let Some(d) = instr.dst {
                    if !liveness.live_out[i].contains_reg(d) {
                        diags.push(
                            Diagnostic::new(
                                LintCode::DeadWrite,
                                kernel,
                                format!("{d} is written but never read afterwards"),
                            )
                            .at(b as u32, Some(i)),
                        );
                    }
                }
            }

            // GT006 — predicated width wider than every producing cmp.
            if let Some(p) = instr.pred {
                let producer_lanes = reaching
                    .defs_of(i, DefTarget::Flag(p.flag))
                    .filter_map(|d| d.site)
                    .map(|s| instrs[s].exec_size.lanes())
                    .max();
                if let Some(max_lanes) = producer_lanes {
                    if instr.exec_size.lanes() > max_lanes {
                        diags.push(
                            Diagnostic::new(
                                LintCode::ExecPredWidthMismatch,
                                kernel,
                                format!(
                                    "exec width {} exceeds the {}-lane cmp producing {}; high lanes use stale flag bits",
                                    instr.exec_size.lanes(),
                                    max_lanes,
                                    p.flag
                                ),
                            )
                            .at(b as u32, Some(i)),
                        );
                    }
                }
            }
        }
    }

    // GT007–GT011 — the structural lints, over the loop forest.
    let dom = Dominators::compute(&cfg);
    let mut forest = LoopForest::compute(&cfg, &dom);
    let ranges = ValueRanges::compute(&cfg, &dom, &forest);
    forest.resolve_trips(&cfg, &|block, src| ranges.entry_range(block, src));

    let mut narrowing_seen = vec![false; instrs.len()];
    let mut dead_loop_seen = vec![false; instrs.len()];
    for l in &forest.loops {
        // Registers serving loop control (read by a cmp or a control
        // instruction in the body): counters and bounds, excluded
        // from the loop-carried lints to keep them quiet on the
        // canonical counted shape.
        let mut control_regs = RegSet::EMPTY;
        for &b in &l.body {
            for i in cfg.block_range(b) {
                let instr = &instrs[i];
                if instr.opcode == Opcode::Cmp || instr.opcode.is_control() {
                    for r in instr.reads() {
                        control_regs.insert_reg(r);
                    }
                }
            }
        }
        // Registers and flags written anywhere in the body.
        let mut written = RegSet::EMPTY;
        for &b in &l.body {
            for i in cfg.block_range(b) {
                written.union_with(&crate::liveness::defs(&instrs[i]));
            }
        }
        // Exit edges: body block → block outside the body.
        let exit_edges: Vec<(usize, usize)> = l
            .body
            .iter()
            .flat_map(|&b| {
                cfg.succs(b)
                    .iter()
                    .filter(|&&s| !l.contains(s))
                    .map(move |&s| (b, s))
            })
            .collect();

        // GT008 — no way out of the loop.
        if exit_edges.is_empty() {
            let has_terminal = l.body.iter().any(|&b| {
                cfg.block_range(b)
                    .any(|i| matches!(instrs[i].opcode, Opcode::Eot | Opcode::Ret))
            });
            if !has_terminal {
                diags.push(
                    Diagnostic::new(
                        LintCode::BackedgeNoExitCond,
                        kernel,
                        format!(
                            "loop headed at bb{} has no exit edge and no eot/ret in its body; \
                             once entered the thread spins forever",
                            l.head
                        ),
                    )
                    .at(l.head as u32, None),
                );
            }
        }

        // GT010 setup — widest in-loop cmp steering a backedge brc.
        let mut steering_lanes = 0usize;
        for &t in &l.tails {
            let range = cfg.block_range(t);
            let brc_at = range.end - 1;
            let brc = &instrs[brc_at];
            if brc.opcode != Opcode::Brc {
                continue;
            }
            let Some(p) = brc.pred else { continue };
            let lanes = reaching
                .defs_of(brc_at, DefTarget::Flag(p.flag))
                .filter_map(|d| d.site)
                .filter(|&s| l.contains(cfg.block_of(s)))
                .map(|s| instrs[s].exec_size.lanes())
                .max()
                .unwrap_or(0);
            steering_lanes = steering_lanes.max(lanes);
        }

        for &b in &l.body {
            for i in cfg.block_range(b) {
                let instr = &instrs[i];

                // GT007 — loop-invariant send: every register operand
                // and the predicate flag (if any) are written nowhere
                // in the body, so each iteration repeats one message.
                if instr.opcode.is_send() {
                    let operands_invariant = instr.reads().all(|r| !written.contains_reg(r));
                    let pred_invariant = instr.pred.is_none_or(|p| !written.contains_flag(p.flag));
                    if operands_invariant && pred_invariant {
                        diags.push(
                            Diagnostic::new(
                                LintCode::LoopInvariantSend,
                                kernel,
                                format!(
                                    "send in the loop headed at bb{} has only loop-invariant \
                                     operands; the identical message repeats every iteration",
                                    l.head
                                ),
                            )
                            .at(b as u32, Some(i)),
                        );
                    }
                }

                // GT009 — loop-carried write dead on every exit. The
                // value survives iterations (GT002 stays quiet) but
                // never escapes the loop.
                if !dead_loop_seen[i]
                    && !instr.opcode.is_send()
                    && instr.pred.is_none()
                    && !exit_edges.is_empty()
                {
                    if let Some(d) = instr.dst {
                        let escapes = exit_edges
                            .iter()
                            .any(|&(_, s)| liveness.block_in[s].contains_reg(d));
                        // Only the self-update may read the register:
                        // a value consumed by another body instruction
                        // (a send payload, say) is real work.
                        let consumed_elsewhere = l.body.iter().any(|&bb| {
                            cfg.block_range(bb)
                                .any(|j| j != i && instrs[j].reads().any(|r| r == d))
                        });
                        if liveness.live_out[i].contains_reg(d)
                            && !escapes
                            && !consumed_elsewhere
                            && !control_regs.contains_reg(d)
                        {
                            dead_loop_seen[i] = true;
                            diags.push(
                                Diagnostic::new(
                                    LintCode::DeadLoopWrite,
                                    kernel,
                                    format!(
                                        "{d} is carried around the loop headed at bb{} but is \
                                         dead on every loop exit; the loop's work never escapes",
                                        l.head
                                    ),
                                )
                                .at(b as u32, Some(i)),
                            );
                        }
                    }
                }

                // GT010 — width narrowing under a divergent backedge.
                if !narrowing_seen[i]
                    && steering_lanes > 1
                    && !instr.opcode.is_control()
                    && instr.dst.is_some()
                    && instr.exec_size.lanes() < steering_lanes
                    && !instr.dst.is_some_and(|d| control_regs.contains_reg(d))
                {
                    narrowing_seen[i] = true;
                    diags.push(
                        Diagnostic::new(
                            LintCode::NarrowingInDivergentLoop,
                            kernel,
                            format!(
                                "exec width {} is narrower than the {}-lane cmp steering the \
                                 loop at bb{}; the dropped lanes stop participating",
                                instr.exec_size.lanes(),
                                steering_lanes,
                                l.head
                            ),
                        )
                        .at(b as u32, Some(i)),
                    );
                }

                // GT011 — proven cumulative send overflow.
                if let (Some(desc), TripCount::Exact(trips)) = (instr.send, l.trips) {
                    let cumulative = trips.saturating_mul(desc.bytes as u64);
                    if desc.bytes <= SendDescriptor::MAX_BYTES
                        && cumulative > SendDescriptor::MAX_BYTES as u64
                    {
                        diags.push(
                            Diagnostic::new(
                                LintCode::RangeProvenSendOverflow,
                                kernel,
                                format!(
                                    "send moves {} bytes per iteration and the loop at bb{} is \
                                     proven to run {} times: {} cumulative bytes overflow the \
                                     descriptor limit of {}",
                                    desc.bytes,
                                    l.head,
                                    trips,
                                    cumulative,
                                    SendDescriptor::MAX_BYTES
                                ),
                            )
                            .at(b as u32, Some(i)),
                        );
                    }
                }
            }
        }
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Predicate, Src, Surface, Terminator};

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.code()).collect()
    }

    #[test]
    fn clean_kernel_has_no_diagnostics() {
        let mut b = KernelBuilder::new("clean");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S8, Reg(16), Src::Reg(Reg(1)), Src::Imm(1))
            .send_write(ExecSize::S8, Reg(1), Reg(16), Surface::Global, 32)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn uninitialized_read_warns() {
        let mut b = KernelBuilder::new("uninit");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(9)), Src::Imm(1))
            .send_write(ExecSize::S1, Reg(1), Reg(2), Surface::Global, 4)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT001"]);
        assert_eq!(diags[0].severity, Severity::Warning);
        assert!(diags[0].message.contains("r9"), "{}", diags[0].message);
    }

    #[test]
    fn dead_write_warns() {
        let mut b = KernelBuilder::new("dead");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S1, Reg(2), Src::Imm(7))
            .mov(ExecSize::S1, Reg(2), Src::Imm(8))
            .send_write(ExecSize::S1, Reg(1), Reg(2), Surface::Global, 4)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT002"]);
        assert_eq!(diags[0].instr, Some(0), "the first mov is dead");
    }

    #[test]
    fn unreachable_block_and_eot_lints() {
        // entry jumps straight to exit; a middle block is orphaned.
        let mut b = KernelBuilder::new("orphan");
        let entry = b.entry_block();
        let orphan = b.new_block();
        let exit = b.new_block();
        b.set_terminator(entry, Terminator::Jump(exit));
        b.block_mut(orphan).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(orphan, Terminator::Jump(exit));
        b.block_mut(exit).eot();
        let k = b.build().unwrap();
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT003"]);
    }

    #[test]
    fn eot_unreachable_is_an_error() {
        // Single block ending in an unconditional self-loop: no eot
        // anywhere.
        let mut b = KernelBuilder::new("spin");
        let bb = b.entry_block();
        b.block_mut(bb).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(bb, Terminator::Jump(bb));
        let k = b.build().unwrap();
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT004"), "{diags:?}");
        let gt004 = diags.iter().find(|d| d.code == LintCode::EotUnreachable);
        assert_eq!(gt004.unwrap().severity, Severity::Error);
    }

    #[test]
    fn send_bytes_overflow_is_an_error() {
        let mut b = KernelBuilder::new("big");
        let bb = b.entry_block();
        b.block_mut(bb)
            .send_read(
                ExecSize::S1,
                Reg(2),
                Reg(1),
                Surface::Global,
                SendDescriptor::MAX_BYTES + 1,
            )
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT005"), "{diags:?}");
    }

    #[test]
    fn exec_pred_width_mismatch_warns() {
        // cmp at 4 lanes, predicated use at 16 lanes.
        let mut b = KernelBuilder::new("width");
        let bb = b.entry_block();
        b.block_mut(bb)
            .cmp(
                ExecSize::S4,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Imm(10),
            )
            .mov(ExecSize::S16, Reg(2), Src::Imm(1))
            .send_write(ExecSize::S16, Reg(1), Reg(2), Surface::Global, 64)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        k.blocks[0].instrs[1].pred = Some(Predicate {
            flag: FlagReg::F0,
            invert: false,
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT006"), "{diags:?}");
        // Same widths → no warning.
        k.blocks[0].instrs[1].exec_size = ExecSize::S4;
        k.blocks[0].instrs[2].exec_size = ExecSize::S4;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT006"), "{diags:?}");
    }

    #[test]
    fn structural_errors_short_circuit_as_gt000() {
        let k = KernelBinary {
            name: "bad".into(),
            blocks: vec![],
            metadata: KernelMetadata::default(),
        };
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert_eq!(codes(&diags), vec!["GT000"]);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn diagnostics_render_and_serialize() {
        let d = Diagnostic::new(
            LintCode::UninitializedRead,
            "k",
            "r9 is read but never written on any path from entry".to_string(),
        )
        .at(0, Some(3));
        assert_eq!(
            d.to_string(),
            "warning[GT001] k bb0 instr 3: r9 is read but never written on any path from entry"
        );
        let json = serde_json::to_string(&d).unwrap();
        assert!(json.contains("\"code\":\"GT001\""), "{json}");
        assert!(json.contains("\"severity\":\"warning\""), "{json}");
        assert!(json.contains("\"instr\":3"), "{json}");
    }

    /// entry(mov r2=0) → body(…, add r2+=1, cmp r2<bound, brc→body) → exit.
    /// `fill_body` populates the loop block before the counter triad.
    fn counted(
        bound: u32,
        fill_body: impl FnOnce(&mut gen_isa::builder::BlockBuilder),
    ) -> KernelBinary {
        let mut b = KernelBuilder::new("loopy");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(body));
        {
            let bb = b.block_mut(body);
            fill_body(bb);
            bb.add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
                .cmp(
                    ExecSize::S1,
                    CondMod::Lt,
                    FlagReg::F0,
                    Src::Reg(Reg(2)),
                    Src::Imm(bound),
                );
        }
        b.set_terminator(
            body,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: body,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        k
    }

    #[test]
    fn loop_invariant_send_warns_gt007() {
        // The send's address (r1, an argument) is never written in the
        // loop: the identical message repeats every iteration.
        let k = counted(8, |bb| {
            bb.send_read(ExecSize::S8, Reg(16), Reg(1), Surface::Global, 32);
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT007"), "{diags:?}");
        // A send whose address advances each iteration is not invariant.
        let k = counted(8, |bb| {
            bb.add(ExecSize::S1, Reg(3), Src::Reg(Reg(3)), Src::Imm(32))
                .send_read(ExecSize::S8, Reg(16), Reg(3), Surface::Global, 32);
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT007"), "{diags:?}");
    }

    #[test]
    fn inescapable_loop_warns_gt008() {
        // entry → spin → spin, with eot only in an orphaned block.
        let mut b = KernelBuilder::new("spin2");
        let entry = b.entry_block();
        let spin = b.new_block();
        let orphan = b.new_block();
        b.block_mut(entry).mov(ExecSize::S1, Reg(2), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(spin));
        b.block_mut(spin)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1));
        b.set_terminator(spin, Terminator::Jump(spin));
        b.block_mut(orphan).eot();
        let k = b.build().unwrap();
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT008"), "{diags:?}");
        // A counted loop has an exit edge: no GT008.
        let k = counted(8, |_| {});
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT008"), "{diags:?}");
    }

    #[test]
    fn dead_loop_accumulator_warns_gt009() {
        // r10 accumulates every iteration but nothing outside the loop
        // (or inside it, besides the self-update) ever reads it.
        let mut k = counted(8, |bb| {
            bb.add(ExecSize::S1, Reg(10), Src::Reg(Reg(10)), Src::Imm(3));
        });
        // Initialize r10 so GT001 stays quiet.
        k.blocks[0].instrs.insert(0, {
            let mut m = gen_isa::Instruction::new(Opcode::Mov, ExecSize::S1);
            m.dst = Some(Reg(10));
            m.srcs[0] = Src::Imm(0);
            m
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT009"), "{diags:?}");
        // Same accumulator consumed by an in-loop send: real work.
        let mut k = counted(8, |bb| {
            bb.add(ExecSize::S1, Reg(10), Src::Reg(Reg(10)), Src::Imm(3))
                .send_write(ExecSize::S1, Reg(10), Reg(2), Surface::Global, 4);
        });
        k.blocks[0].instrs.insert(0, {
            let mut m = gen_isa::Instruction::new(Opcode::Mov, ExecSize::S1);
            m.dst = Some(Reg(10));
            m.srcs[0] = Src::Imm(0);
            m
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT009"), "{diags:?}");
    }

    #[test]
    fn narrowing_in_divergent_loop_warns_gt010() {
        // SIMD8 cmp steers the backedge; a SIMD1 add in the body drops
        // seven lanes.
        let mut b = KernelBuilder::new("narrow");
        let entry = b.entry_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry)
            .mov(ExecSize::S8, Reg(2), Src::Imm(0))
            .mov(ExecSize::S8, Reg(4), Src::Imm(0));
        b.set_terminator(entry, Terminator::Jump(body));
        b.block_mut(body)
            .add(ExecSize::S1, Reg(4), Src::Reg(Reg(4)), Src::Imm(1))
            .add(ExecSize::S8, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
            .cmp(
                ExecSize::S8,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Imm(8),
            );
        b.set_terminator(
            body,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: body,
                fallthrough: exit,
            },
        );
        b.block_mut(exit)
            .send_write(ExecSize::S8, Reg(1), Reg(4), Surface::Global, 32)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        let gt010: Vec<_> = diags
            .iter()
            .filter(|d| d.code == LintCode::NarrowingInDivergentLoop)
            .collect();
        assert_eq!(gt010.len(), 1, "{diags:?}");
        assert!(gt010[0].message.contains("8-lane"), "{}", gt010[0].message);
        // A single-lane steering cmp is convergent: no GT010.
        let k = counted(8, |bb| {
            bb.add(ExecSize::S1, Reg(4), Src::Reg(Reg(4)), Src::Imm(1))
                .send_write(ExecSize::S1, Reg(1), Reg(4), Surface::Global, 4);
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT010"), "{diags:?}");
    }

    #[test]
    fn proven_cumulative_send_overflow_warns_gt011() {
        // 1 MiB per message × 32 proven trips = 32 MiB cumulative,
        // past the 16 MiB descriptor limit — though each individual
        // message is fine (no GT005).
        let k = counted(32, |bb| {
            bb.send_read(ExecSize::S8, Reg(16), Reg(1), Surface::Global, 1 << 20);
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(codes(&diags).contains(&"GT011"), "{diags:?}");
        assert!(!codes(&diags).contains(&"GT005"), "{diags:?}");
        // 8 trips × 1 MiB stays under the limit.
        let k = counted(8, |bb| {
            bb.send_read(ExecSize::S8, Reg(16), Reg(1), Surface::Global, 1 << 20);
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(!codes(&diags).contains(&"GT011"), "{diags:?}");
    }

    #[test]
    fn predicate_without_producer_warns_uninitialized() {
        let mut b = KernelBuilder::new("noflag");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S1, Reg(2), Src::Imm(1))
            .send_write(ExecSize::S1, Reg(1), Reg(2), Surface::Global, 4)
            .eot();
        let mut k = b.build().unwrap();
        k.metadata.num_args = 1;
        k.blocks[0].instrs[0].pred = Some(Predicate {
            flag: FlagReg::F1,
            invert: false,
        });
        let diags = lint_kernel(&k, &LintConfig::for_metadata(&k.metadata)).unwrap();
        assert!(
            diags
                .iter()
                .any(|d| d.code == LintCode::UninitializedRead && d.message.contains("f1")),
            "{diags:?}"
        );
    }
}
