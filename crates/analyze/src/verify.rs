//! Instrumentation-safety verification: prove a rewritten kernel
//! binary is the original plus harmless probes.
//!
//! The rewriter only ever *inserts* instruction sequences in front of
//! existing instructions, and injected code always touches at least
//! one reserved instrumentation register (`r120..r127`) — registers
//! validated application code can never use. That gives the verifier
//! a sound classification: an instruction in the rewritten stream
//! that reads or writes a reserved register is a probe; everything
//! else must align, in order, with the original stream.
//!
//! On top of that alignment the verifier proves, independently of the
//! rewriter's own bookkeeping:
//!
//! 1. **No app-code tampering** — the non-probe instructions equal
//!    the originals field-for-field (control opcodes compared modulo
//!    their repaired `branch_offset`).
//! 2. **Probes are inert** — every probe writes only reserved
//!    registers, never a register or flag that liveness (computed on
//!    the *original* stream) proves live at the injection point,
//!    never transfers control, and never touches application global
//!    memory.
//! 3. **Branches are repaired, not retargeted** — every control
//!    transfer lands on the start of the probe group of its original
//!    target, so the same original instruction executes next and
//!    block-entry probes are never skipped.

use crate::bitset::RegSet;
use crate::cfg::Cfg;
use crate::liveness::Liveness;
use gen_isa::encode::decode_stream;
use gen_isa::{DecodeError, Instruction, Opcode, Reg, Surface, FIRST_INSTRUMENTATION_REG};

/// Whether `instr` is an injected probe: it reads or writes a
/// reserved instrumentation register. Exact for validated inputs —
/// application code never touches `r120..r127`.
pub fn is_probe(instr: &Instruction) -> bool {
    instr
        .reads()
        .chain(instr.writes())
        .any(|r| r.0 >= FIRST_INSTRUMENTATION_REG)
}

/// One way a rewrite can be unsafe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A non-probe instruction differs from the original it should
    /// mirror.
    OriginalCodeAltered {
        /// Original instruction index.
        at: usize,
        /// What changed.
        detail: String,
    },
    /// The rewritten stream ran out before every original
    /// instruction was accounted for.
    MissingOriginalCode {
        /// Originals matched before the stream ended.
        matched: usize,
        /// Originals expected.
        expected: usize,
    },
    /// A probe writes a non-reserved register that is live at its
    /// injection point.
    ProbeClobbersLiveRegister {
        /// Probe index in the rewritten stream.
        probe_at: usize,
        /// Original instruction the probe precedes.
        owner: usize,
        /// The clobbered register.
        reg: Reg,
    },
    /// A probe writes a flag register that is live at its injection
    /// point.
    ProbeClobbersLiveFlag {
        /// Probe index in the rewritten stream.
        probe_at: usize,
        /// Original instruction the probe precedes.
        owner: usize,
    },
    /// A probe sends to application global memory.
    ProbeTouchesAppMemory {
        /// Probe index in the rewritten stream.
        probe_at: usize,
    },
    /// A probe transfers control.
    ProbeIsControl {
        /// Probe index in the rewritten stream.
        probe_at: usize,
    },
    /// A repaired branch lands on a different original instruction
    /// than it used to.
    BranchRetargeted {
        /// Original index of the branch.
        at: usize,
        /// Original target index.
        old_target: usize,
        /// Original instruction the repaired branch now reaches.
        maps_to: usize,
    },
    /// A repaired branch reaches the right original instruction but
    /// jumps past probes inserted before it.
    BranchSkipsProbes {
        /// Original index of the branch.
        at: usize,
        /// Original target index.
        target: usize,
        /// Rewritten-stream index the branch should land on.
        group_start: usize,
    },
    /// A branch in original or rewritten code targets outside its
    /// stream.
    BranchOutOfRange {
        /// Original index of the branch.
        at: usize,
    },
    /// The rewritten binary is not marked `instrumented`.
    NotMarkedInstrumented,
    /// The original binary already used reserved registers, so probes
    /// cannot be distinguished from application code.
    OriginalTouchesReservedRegs {
        /// Offending original instruction.
        at: usize,
        /// The reserved register it touches.
        reg: Reg,
    },
    /// Kernel name or metadata fields changed across the rewrite.
    MetadataAltered {
        /// What changed.
        detail: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::OriginalCodeAltered { at, detail } => {
                write!(f, "original instruction {at} was altered: {detail}")
            }
            Violation::MissingOriginalCode { matched, expected } => write!(
                f,
                "rewritten stream covers only {matched} of {expected} original instructions"
            ),
            Violation::ProbeClobbersLiveRegister {
                probe_at,
                owner,
                reg,
            } => write!(
                f,
                "probe at rewritten index {probe_at} writes {reg}, live before original instruction {owner}"
            ),
            Violation::ProbeClobbersLiveFlag { probe_at, owner } => write!(
                f,
                "probe at rewritten index {probe_at} writes a flag live before original instruction {owner}"
            ),
            Violation::ProbeTouchesAppMemory { probe_at } => write!(
                f,
                "probe at rewritten index {probe_at} accesses application global memory"
            ),
            Violation::ProbeIsControl { probe_at } => write!(
                f,
                "probe at rewritten index {probe_at} transfers control"
            ),
            Violation::BranchRetargeted {
                at,
                old_target,
                maps_to,
            } => write!(
                f,
                "branch at original instruction {at} targeted {old_target} but now reaches {maps_to}"
            ),
            Violation::BranchSkipsProbes {
                at,
                target,
                group_start,
            } => write!(
                f,
                "branch at original instruction {at} skips probes inserted before its target {target} (should land at rewritten index {group_start})"
            ),
            Violation::BranchOutOfRange { at } => {
                write!(f, "branch at original instruction {at} targets outside the stream")
            }
            Violation::NotMarkedInstrumented => {
                write!(f, "rewritten binary is not marked instrumented")
            }
            Violation::OriginalTouchesReservedRegs { at, reg } => write!(
                f,
                "original instruction {at} touches reserved register {reg}; probes are indistinguishable"
            ),
            Violation::MetadataAltered { detail } => {
                write!(f, "kernel metadata altered: {detail}")
            }
        }
    }
}

/// The outcome of verifying one rewrite.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// Kernel name.
    pub kernel: String,
    /// Instruction count of the original stream.
    pub original_instructions: usize,
    /// Instruction count of the rewritten stream.
    pub instrumented_instructions: usize,
    /// Probes identified in the rewritten stream.
    pub probes: usize,
    /// Control transfers whose displacement was repaired.
    pub repaired_branches: usize,
    /// Safety violations (empty for a safe rewrite).
    pub violations: Vec<Violation>,
    /// Non-fatal observations (e.g. a probe writing a provably dead
    /// non-reserved register).
    pub notes: Vec<String>,
}

impl VerifyReport {
    /// Whether the rewrite is proven safe.
    pub fn is_safe(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "kernel `{}`: {} original + {} probe instructions, {} repaired branches",
            self.kernel, self.original_instructions, self.probes, self.repaired_branches,
        )?;
        if self.is_safe() {
            write!(f, ": safe")
        } else {
            for v in &self.violations {
                write!(f, "\n  violation: {v}")?;
            }
            Ok(())
        }
    }
}

/// Why verification failed.
#[derive(Debug)]
pub enum VerifyError {
    /// One of the binaries did not decode.
    Decode(DecodeError),
    /// The rewrite decoded but is provably unsafe; the report lists
    /// every violation found.
    Unsafe(VerifyReport),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Decode(e) => write!(f, "verification could not decode binary: {e}"),
            VerifyError::Unsafe(report) => write!(f, "unsafe rewrite: {report}"),
        }
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VerifyError::Decode(e) => Some(e),
            VerifyError::Unsafe(_) => None,
        }
    }
}

impl From<DecodeError> for VerifyError {
    fn from(e: DecodeError) -> VerifyError {
        VerifyError::Decode(e)
    }
}

/// Verify that `rewritten` is a safe instrumentation of `original`
/// (both encoded kernel binaries).
///
/// # Errors
///
/// [`VerifyError::Decode`] when either binary fails to decode;
/// [`VerifyError::Unsafe`] — carrying the full report — when any
/// safety violation is found.
pub fn verify_rewrite(original: &[u8], rewritten: &[u8]) -> Result<VerifyReport, VerifyError> {
    let orig = decode_stream(original)?;
    let rw = decode_stream(rewritten)?;

    let mut report = VerifyReport {
        kernel: orig.name.clone(),
        original_instructions: orig.instrs.len(),
        instrumented_instructions: rw.instrs.len(),
        probes: 0,
        repaired_branches: 0,
        violations: Vec::new(),
        notes: Vec::new(),
    };

    // Metadata invariants.
    if !rw.metadata.instrumented {
        report.violations.push(Violation::NotMarkedInstrumented);
    }
    if rw.name != orig.name {
        report.violations.push(Violation::MetadataAltered {
            detail: format!("name `{}` became `{}`", orig.name, rw.name),
        });
    }
    if rw.metadata.num_args != orig.metadata.num_args {
        report.violations.push(Violation::MetadataAltered {
            detail: format!(
                "num_args {} became {}",
                orig.metadata.num_args, rw.metadata.num_args
            ),
        });
    }
    if rw.metadata.max_app_reg != orig.metadata.max_app_reg {
        report.violations.push(Violation::MetadataAltered {
            detail: format!(
                "max_app_reg {} became {}",
                orig.metadata.max_app_reg, rw.metadata.max_app_reg
            ),
        });
    }

    // Precondition: the probe classification is only exact when the
    // original never touches reserved registers.
    if orig.metadata.instrumented {
        report.violations.push(Violation::MetadataAltered {
            detail: "original binary is already instrumented".to_string(),
        });
    }
    for (i, instr) in orig.instrs.iter().enumerate() {
        if let Some(reg) = instr
            .reads()
            .chain(instr.writes())
            .find(|r| r.0 >= FIRST_INSTRUMENTATION_REG)
        {
            report
                .violations
                .push(Violation::OriginalTouchesReservedRegs { at: i, reg });
        }
    }
    if !report.violations.is_empty() {
        return Err(VerifyError::Unsafe(report));
    }

    // Align non-probe instructions of the rewritten stream against the
    // original, in order. `pos[i]` = rewritten index of original `i`;
    // `group_start[i]` = rewritten index of the first probe inserted
    // before original `i` (== pos[i] when none).
    let n = orig.instrs.len();
    let mut pos = vec![0usize; n];
    let mut group_start = vec![0usize; n];
    let mut next_orig = 0usize;
    let mut current_group = 0usize;
    let mut probes: Vec<usize> = Vec::new();
    for (p, instr) in rw.instrs.iter().enumerate() {
        if is_probe(instr) {
            probes.push(p);
            continue;
        }
        if next_orig == n {
            report.violations.push(Violation::OriginalCodeAltered {
                at: n,
                detail: format!(
                    "unexpected non-probe instruction `{instr}` past the end of the original stream"
                ),
            });
            return Err(VerifyError::Unsafe(report));
        }
        let expected = &orig.instrs[next_orig];
        if !matches_modulo_branch(expected, instr) {
            report.violations.push(Violation::OriginalCodeAltered {
                at: next_orig,
                detail: format!("`{expected}` became `{instr}`"),
            });
            return Err(VerifyError::Unsafe(report));
        }
        pos[next_orig] = p;
        group_start[next_orig] = current_group;
        next_orig += 1;
        current_group = p + 1;
    }
    if next_orig != n {
        report.violations.push(Violation::MissingOriginalCode {
            matched: next_orig,
            expected: n,
        });
        return Err(VerifyError::Unsafe(report));
    }
    report.probes = probes.len();

    // Owner of each rewritten index: the original instruction whose
    // probe group (or own position) contains it. Trailing probes
    // after the last original (the rewriter never emits them) get
    // owner `n`, where nothing is live.
    let owner_of = |p: usize| -> usize {
        match pos.binary_search(&p) {
            Ok(i) => i,
            Err(i) => i, // between pos[i-1] and pos[i] → owned by i
        }
    };

    // Liveness on the ORIGINAL stream: probes must not clobber
    // anything the original program still needs at their injection
    // point.
    let cfg = Cfg::from_instrs(&orig.instrs).map_err(VerifyError::Decode)?;
    let liveness = Liveness::compute(&cfg);
    let live_before = |owner: usize| -> RegSet {
        if owner < n {
            liveness.live_in[owner]
        } else {
            RegSet::EMPTY
        }
    };

    for &p in &probes {
        let instr = &rw.instrs[p];
        let owner = owner_of(p);
        if instr.opcode.is_control() {
            report
                .violations
                .push(Violation::ProbeIsControl { probe_at: p });
        }
        if let Some(desc) = instr.send {
            if desc.surface == Surface::Global {
                report
                    .violations
                    .push(Violation::ProbeTouchesAppMemory { probe_at: p });
            }
        }
        let live = live_before(owner);
        if let Some(dst) = instr.dst {
            if dst.0 < FIRST_INSTRUMENTATION_REG {
                if live.contains_reg(dst) {
                    report
                        .violations
                        .push(Violation::ProbeClobbersLiveRegister {
                            probe_at: p,
                            owner,
                            reg: dst,
                        });
                } else {
                    report.notes.push(format!(
                        "probe at rewritten index {p} writes non-reserved {dst}, dead before original instruction {owner}"
                    ));
                }
            }
        }
        if instr.opcode == Opcode::Cmp {
            if let Some(flag) = instr.flag {
                if live.contains_flag(flag) {
                    report
                        .violations
                        .push(Violation::ProbeClobbersLiveFlag { probe_at: p, owner });
                }
            }
        }
    }

    // Branch repair: every control transfer must land exactly on the
    // start of its original target's probe group — same original
    // instruction next, no block-entry probe skipped.
    for (i, instr) in orig.instrs.iter().enumerate() {
        if !instr.opcode.is_control() || matches!(instr.opcode, Opcode::Eot | Opcode::Ret) {
            continue;
        }
        let old_target = match usize::try_from(i as i64 + 1 + i64::from(instr.branch_offset)) {
            Ok(t) if t < n => t,
            _ => {
                report
                    .violations
                    .push(Violation::BranchOutOfRange { at: i });
                continue;
            }
        };
        let repaired = &rw.instrs[pos[i]];
        let new_target =
            match usize::try_from(pos[i] as i64 + 1 + i64::from(repaired.branch_offset)) {
                Ok(t) if t < rw.instrs.len() => t,
                _ => {
                    report
                        .violations
                        .push(Violation::BranchOutOfRange { at: i });
                    continue;
                }
            };
        if repaired.branch_offset != instr.branch_offset {
            report.repaired_branches += 1;
        }
        if new_target == group_start[old_target] {
            continue;
        }
        let maps_to = owner_of(new_target);
        if maps_to != old_target {
            report.violations.push(Violation::BranchRetargeted {
                at: i,
                old_target,
                maps_to,
            });
        } else {
            report.violations.push(Violation::BranchSkipsProbes {
                at: i,
                target: old_target,
                group_start: group_start[old_target],
            });
        }
    }

    if report.is_safe() {
        Ok(report)
    } else {
        Err(VerifyError::Unsafe(report))
    }
}

/// Field-for-field equality, ignoring `branch_offset` on control
/// opcodes (the rewriter legitimately repairs it).
fn matches_modulo_branch(original: &Instruction, candidate: &Instruction) -> bool {
    if original.opcode.is_control() && !matches!(original.opcode, Opcode::Eot | Opcode::Ret) {
        let mut a = *original;
        let mut b = *candidate;
        a.branch_offset = 0;
        b.branch_offset = 0;
        a == b
    } else {
        original == candidate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::encode::encode_stream;
    use gen_isa::{CondMod, ExecSize, FlagReg, Reg, Src, Surface, Terminator};

    /// A two-block loop kernel with a global send, encoded.
    fn sample_kernel() -> Vec<u8> {
        let mut b = KernelBuilder::new("sample");
        b.set_num_args(1);
        let head = b.entry_block();
        let exit = b.new_block();
        b.block_mut(head)
            .add(ExecSize::S8, Reg(16), Src::Reg(Reg(16)), Src::Imm(1))
            .send_read(ExecSize::S8, Reg(17), Reg(1), Surface::Global, 64)
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(16)),
                Src::Imm(8),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        b.build().unwrap().encode()
    }

    fn identity_rewrite(bytes: &[u8]) -> Vec<u8> {
        let mut stream = decode_stream(bytes).unwrap();
        stream.metadata.instrumented = true;
        encode_stream(&stream.name, &stream.metadata, &stream.instrs)
    }

    #[test]
    fn identity_rewrite_verifies() {
        let orig = sample_kernel();
        let rw = identity_rewrite(&orig);
        let report = verify_rewrite(&orig, &rw).unwrap();
        assert!(report.is_safe());
        assert_eq!(report.probes, 0);
        assert_eq!(report.repaired_branches, 0);
    }

    #[test]
    fn unmarked_rewrite_rejected() {
        let orig = sample_kernel();
        let err = verify_rewrite(&orig, &orig).unwrap_err();
        let VerifyError::Unsafe(report) = err else {
            panic!("expected unsafe");
        };
        assert!(report
            .violations
            .contains(&Violation::NotMarkedInstrumented));
    }

    #[test]
    fn altered_app_instruction_rejected() {
        let orig = sample_kernel();
        let mut stream = decode_stream(&orig).unwrap();
        stream.metadata.instrumented = true;
        // Tamper with an application instruction's immediate.
        stream.instrs[0].srcs[1] = Src::Imm(2);
        let rw = encode_stream(&stream.name, &stream.metadata, &stream.instrs);
        let err = verify_rewrite(&orig, &rw).unwrap_err();
        let VerifyError::Unsafe(report) = err else {
            panic!("expected unsafe");
        };
        assert!(matches!(
            report.violations[0],
            Violation::OriginalCodeAltered { at: 0, .. }
        ));
    }

    #[test]
    fn dropped_app_instruction_rejected() {
        let orig = sample_kernel();
        let mut stream = decode_stream(&orig).unwrap();
        stream.metadata.instrumented = true;
        stream.instrs.remove(1);
        // Removing the send shifts the brc target; keep offsets legal
        // by removing after the branch-carrying tail instead.
        let rw = encode_stream(&stream.name, &stream.metadata, &stream.instrs);
        let err = verify_rewrite(&orig, &rw).unwrap_err();
        assert!(matches!(err, VerifyError::Unsafe(_)));
    }

    #[test]
    fn garbage_bytes_fail_decode() {
        let orig = sample_kernel();
        assert!(matches!(
            verify_rewrite(&orig, b"junk"),
            Err(VerifyError::Decode(_))
        ));
        assert!(matches!(
            verify_rewrite(b"junk", &orig),
            Err(VerifyError::Decode(_))
        ));
    }

    #[test]
    fn original_using_reserved_regs_rejected() {
        // Hand-built (the builder's validation would reject this):
        // an "original" that already touches r120.
        use gen_isa::{BasicBlock, BlockId, Instruction, KernelBinary, KernelMetadata, Opcode};
        let mut mov = Instruction::new(Opcode::Mov, ExecSize::S1);
        mov.dst = Some(Reg(120));
        mov.srcs[0] = Src::Imm(0);
        let k = KernelBinary {
            name: "cheat".into(),
            blocks: vec![BasicBlock {
                id: BlockId(0),
                instrs: vec![mov],
                term: Terminator::Eot,
            }],
            metadata: KernelMetadata::default(),
        };
        let bytes = k.encode();
        let rw = identity_rewrite(&bytes);
        let err = verify_rewrite(&bytes, &rw).unwrap_err();
        let VerifyError::Unsafe(report) = err else {
            panic!("expected unsafe");
        };
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OriginalTouchesReservedRegs { .. })));
    }
}
