//! Value-range analysis over GRF registers.
//!
//! A lightweight forward interval analysis feeding the trip-count
//! matcher ([`crate::loops`]), the static cost model
//! ([`crate::cost`]) and the range-powered lints. Facts are unsigned
//! `[lo, hi]` intervals per register — the ISA compares unsigned
//! ([`gen_isa::CondMod`]), so unsigned intervals match the machine.
//!
//! One forward pass in reverse post-order propagates facts along
//! *forward* edges only; cyclic flow is made sound by havocking at
//! the points where a retreating edge lands:
//!
//! * a natural-loop head havocs exactly the registers its loop
//!   clobbers (loop-invariant registers keep their intervals through
//!   the loop);
//! * a block entered by a retreating edge that is *not* a backedge
//!   (irreducible control flow) havocs everything.
//!
//! The pre-havoc join at each block — [`ValueRanges::entry_range`] —
//! is the loop-*entry* state at a head: exactly what the trip-count
//! matcher needs for induction-variable initial values and
//! loop-invariant bounds.
//!
//! Registers model the per-lane-uniform approximation: a SIMD
//! register gets one interval covering lane 0 (the lane branch
//! decisions consult). Predicated writes join instead of replacing.

use crate::cfg::Cfg;
use crate::dominators::Dominators;
use crate::liveness::defs;
use crate::loops::LoopForest;
use gen_isa::{Instruction, Opcode, OpcodeCategory, Src, NUM_GRF};

/// An unsigned interval `[lo, hi]`, inclusive on both ends.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u32,
    /// Largest possible value.
    pub hi: u32,
}

impl Interval {
    /// The unconstrained interval.
    pub const TOP: Interval = Interval {
        lo: 0,
        hi: u32::MAX,
    };

    /// A singleton interval.
    pub fn exact(v: u32) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// The value, when the interval is a singleton.
    pub fn as_exact(&self) -> Option<u32> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether nothing is known.
    pub fn is_top(&self) -> bool {
        *self == Interval::TOP
    }

    /// Least upper bound.
    pub fn join(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.as_exact() {
            Some(v) => write!(f, "{v}"),
            None if self.is_top() => f.write_str("⊤"),
            None => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

/// Per-block register intervals for one kernel.
#[derive(Debug, Clone)]
pub struct ValueRanges {
    /// Post-havoc fact at each block's entry: sound at every point in
    /// the block.
    block_in: Vec<Vec<Interval>>,
    /// Pre-havoc forward-edge join at each block's entry: at a loop
    /// head, the loop-*entry* values.
    forward_in: Vec<Vec<Interval>>,
}

impl ValueRanges {
    /// Run the analysis. `dom` and `forest` must come from the same
    /// `cfg`.
    pub fn compute(cfg: &Cfg<'_>, dom: &Dominators, forest: &LoopForest) -> ValueRanges {
        let nb = cfg.num_blocks();
        let top = vec![Interval::TOP; NUM_GRF as usize];
        let mut block_in = vec![top.clone(); nb];
        let mut forward_in = vec![top.clone(); nb];
        let mut out: Vec<Vec<Interval>> = vec![top.clone(); nb];

        let mut rpo_index = vec![usize::MAX; nb];
        for (i, &b) in cfg.rpo().iter().enumerate() {
            rpo_index[b] = i;
        }

        // Registers clobbered per loop, for head havoc.
        let clobbered: Vec<Vec<bool>> = forest
            .loops
            .iter()
            .map(|l| {
                let mut c = vec![false; NUM_GRF as usize];
                for &b in &l.body {
                    for i in cfg.block_range(b) {
                        for r in defs(&cfg.instrs[i]).iter_regs() {
                            c[r.0 as usize] = true;
                        }
                    }
                }
                c
            })
            .collect();

        for &b in cfg.rpo() {
            if !cfg.reachable()[b] {
                continue;
            }
            // Join over already-processed (forward-edge) predecessors.
            let mut fact: Option<Vec<Interval>> = if b == 0 { Some(top.clone()) } else { None };
            for &p in cfg.preds(b) {
                if !cfg.reachable()[p] || rpo_index[p] >= rpo_index[b] {
                    continue;
                }
                fact = Some(match fact {
                    None => out[p].clone(),
                    Some(mut f) => {
                        for (slot, o) in f.iter_mut().zip(&out[p]) {
                            *slot = slot.join(*o);
                        }
                        f
                    }
                });
            }
            let mut fact = fact.unwrap_or_else(|| top.clone());
            forward_in[b] = fact.clone();

            // Havoc for cyclic inflow.
            let irreducible_inflow = cfg.preds(b).iter().any(|&p| {
                cfg.reachable()[p] && rpo_index[p] >= rpo_index[b] && !dom.dominates(b, p)
            });
            if irreducible_inflow {
                fact = top.clone();
            } else if let Some(li) = forest.loops.iter().position(|l| l.head == b) {
                for (slot, hit) in fact.iter_mut().zip(&clobbered[li]) {
                    if *hit {
                        *slot = Interval::TOP;
                    }
                }
            }
            block_in[b] = fact.clone();

            for i in cfg.block_range(b) {
                transfer(&cfg.instrs[i], &mut fact);
            }
            out[b] = fact;
        }

        ValueRanges {
            block_in,
            forward_in,
        }
    }

    /// The pre-havoc `[lo, hi]` of `src` at the entry of `block` — at
    /// a loop head, the loop-entry value. Immediates are exact.
    pub fn entry_range(&self, block: usize, src: Src) -> (u32, u32) {
        match src {
            Src::Imm(v) => (v, v),
            Src::Reg(r) if r.0 < NUM_GRF => {
                let iv = self.forward_in[block][r.0 as usize];
                (iv.lo, iv.hi)
            }
            _ => (0, u32::MAX),
        }
    }

    /// Sound (post-havoc) interval of `src` just before instruction
    /// `i`, recomputed by walking the block prefix.
    pub fn range_before(&self, cfg: &Cfg<'_>, i: usize, src: Src) -> Interval {
        match src {
            Src::Imm(v) => Interval::exact(v),
            Src::Reg(r) if r.0 < NUM_GRF => {
                let b = cfg.block_of(i);
                let mut fact = self.block_in[b].clone();
                for j in cfg.block_range(b) {
                    if j == i {
                        break;
                    }
                    transfer(&cfg.instrs[j], &mut fact);
                }
                fact[r.0 as usize]
            }
            _ => Interval::TOP,
        }
    }

    /// Sound intervals at the entry of `block` (after loop-head
    /// havoc).
    pub fn block_entry(&self, block: usize) -> &[Interval] {
        &self.block_in[block]
    }
}

/// Interval of one source operand under `fact`.
fn src_interval(src: Src, fact: &[Interval]) -> Interval {
    match src {
        Src::Imm(v) => Interval::exact(v),
        Src::Reg(r) if r.0 < NUM_GRF => fact[r.0 as usize],
        _ => Interval::TOP,
    }
}

/// Apply one instruction to `fact`.
fn transfer(instr: &Instruction, fact: &mut [Interval]) {
    let Some(dst) = instr.dst else {
        return;
    };
    if dst.0 >= NUM_GRF {
        return;
    }
    let computed = eval_interval(instr, fact);
    let slot = dst.0 as usize;
    // A predicated write merges with the incumbent value.
    fact[slot] = if instr.pred.is_some() {
        fact[slot].join(computed)
    } else {
        computed
    };
}

/// Abstract evaluation of one instruction's destination value.
fn eval_interval(instr: &Instruction, fact: &[Interval]) -> Interval {
    let op = instr.opcode;
    match op.category() {
        OpcodeCategory::Send | OpcodeCategory::Control => return Interval::TOP,
        _ => {}
    }
    let a = src_interval(instr.srcs[0], fact);
    let b = src_interval(instr.srcs[1], fact);
    let c = src_interval(instr.srcs[2], fact);

    // Singleton operands fold exactly through the ISA's own ALU
    // semantics — always sound, any opcode.
    match op.num_sources() {
        1 => {
            if let Some(av) = a.as_exact() {
                return Interval::exact(op.eval_unary(av));
            }
        }
        2 => {
            if let (Some(av), Some(bv)) = (a.as_exact(), b.as_exact()) {
                return Interval::exact(op.eval_binary(av, bv));
            }
        }
        3 => {
            if let (Some(av), Some(bv), Some(cv)) = (a.as_exact(), b.as_exact(), c.as_exact()) {
                return Interval::exact(op.eval_ternary(av, bv, cv));
            }
        }
        _ => {}
    }

    // Interval rules for the monotonic operations.
    match op {
        Opcode::Mov => a,
        Opcode::Add => {
            if (a.hi as u64) + (b.hi as u64) <= u32::MAX as u64 {
                Interval {
                    lo: a.lo + b.lo,
                    hi: a.hi + b.hi,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Sub => {
            if a.lo >= b.hi {
                Interval {
                    lo: a.lo - b.hi,
                    hi: a.hi - b.lo,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Mul => {
            if (a.hi as u64) * (b.hi as u64) <= u32::MAX as u64 {
                Interval {
                    lo: a.lo * b.lo,
                    hi: a.hi * b.hi,
                }
            } else {
                Interval::TOP
            }
        }
        Opcode::Min => Interval {
            lo: a.lo.min(b.lo),
            hi: a.hi.min(b.hi),
        },
        Opcode::Max => Interval {
            lo: a.lo.max(b.lo),
            hi: a.hi.max(b.hi),
        },
        // `a & b` never exceeds either operand.
        Opcode::And => Interval {
            lo: 0,
            hi: a.hi.min(b.hi),
        },
        // A right shift by an exact amount shifts both bounds.
        Opcode::Shr => match b.as_exact() {
            Some(s) => Interval {
                lo: a.lo.wrapping_shr(s & 31),
                hi: a.hi.wrapping_shr(s & 31),
            },
            None => Interval { lo: 0, hi: a.hi },
        },
        _ => Interval::TOP,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominators::Dominators;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{CondMod, ExecSize, FlagReg, Reg, Terminator};

    fn analyze(bin: &gen_isa::KernelBinary) -> (Vec<gen_isa::Instruction>, ValueRanges) {
        let flat = bin.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let vr = ValueRanges::compute(&cfg, &dom, &forest);
        (flat.instrs.clone(), vr)
    }

    #[test]
    fn straightline_constant_folding() {
        let mut b = KernelBuilder::new("k");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S1, Reg(2), Src::Imm(5))
            .add(ExecSize::S1, Reg(3), Src::Reg(Reg(2)), Src::Imm(7))
            .mul(ExecSize::S1, Reg(4), Src::Reg(Reg(3)), Src::Imm(2))
            .eot();
        let bin = b.build().unwrap();
        let flat = bin.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let vr = ValueRanges::compute(&cfg, &dom, &forest);
        // Just before the eot, r4 = (5+7)*2 = 24.
        assert_eq!(
            vr.range_before(&cfg, 3, Src::Reg(Reg(4))),
            Interval::exact(24)
        );
        // An unwritten register stays TOP.
        assert!(vr.range_before(&cfg, 3, Src::Reg(Reg(9))).is_top());
    }

    #[test]
    fn loop_head_havocs_only_clobbered_registers() {
        // entry: r2 = 0, r3 = 99; loop head: r2 += 1, cmp, brc.
        let mut b = KernelBuilder::new("k");
        let entry = b.entry_block();
        let head = b.new_block();
        let exit = b.new_block();
        b.block_mut(entry)
            .mov(ExecSize::S1, Reg(2), Src::Imm(0))
            .mov(ExecSize::S1, Reg(3), Src::Imm(99));
        b.set_terminator(entry, Terminator::Jump(head));
        b.block_mut(head)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(2)),
                Src::Imm(8),
            );
        b.set_terminator(
            head,
            Terminator::CondJump {
                flag: FlagReg::F0,
                invert: false,
                taken: head,
                fallthrough: exit,
            },
        );
        b.block_mut(exit).eot();
        let (_, vr) = analyze(&b.build().unwrap());
        // Loop-invariant r3 keeps its value through the loop …
        assert_eq!(vr.block_entry(1)[3], Interval::exact(99));
        // … while the induction variable r2 is havocked at the head …
        assert!(vr.block_entry(1)[2].is_top());
        // … but its loop-entry value is preserved pre-havoc.
        assert_eq!(vr.entry_range(1, Src::Reg(Reg(2))), (0, 0));
        assert_eq!(vr.entry_range(1, Src::Imm(8)), (8, 8));
    }

    #[test]
    fn predicated_write_joins() {
        let mut b = KernelBuilder::new("k");
        let bb = b.entry_block();
        b.block_mut(bb)
            .mov(ExecSize::S1, Reg(2), Src::Imm(1))
            .cmp(
                ExecSize::S1,
                CondMod::Lt,
                FlagReg::F0,
                Src::Reg(Reg(1)),
                Src::Imm(4),
            )
            .raw({
                let mut i = gen_isa::Instruction::new(Opcode::Mov, ExecSize::S1);
                i.dst = Some(Reg(2));
                i.srcs[0] = Src::Imm(9);
                i.pred = Some(gen_isa::Predicate {
                    flag: FlagReg::F0,
                    invert: false,
                });
                i
            })
            .eot();
        let bin = b.build().unwrap();
        let flat = bin.flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let dom = Dominators::compute(&cfg);
        let forest = LoopForest::compute(&cfg, &dom);
        let vr = ValueRanges::compute(&cfg, &dom, &forest);
        // After the predicated mov, r2 ∈ [1, 9].
        assert_eq!(
            vr.range_before(&cfg, 3, Src::Reg(Reg(2))),
            Interval { lo: 1, hi: 9 }
        );
    }
}
