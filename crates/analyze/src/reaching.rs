//! Forward reaching definitions over GRF and flag registers.
//!
//! Each definition site (instruction writing a register or a `cmp`
//! writing a flag) gets a dense index; facts are [`DefSet`]s over
//! those indices. Registers defined *before* the kernel runs — the
//! thread-id register and argument registers, as configured by the
//! caller — get synthetic entry definitions with no instruction site,
//! so "no reaching definition" precisely means "read before any write
//! on every path".

use crate::bitset::{DefSet, RegSet};
use crate::cfg::Cfg;
use crate::dataflow::{solve, Analysis, Direction};
use crate::liveness::defs;
use gen_isa::{FlagReg, Reg, NUM_GRF};

/// What a definition writes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DefTarget {
    /// A GRF register.
    Grf(Reg),
    /// A flag register.
    Flag(FlagReg),
}

impl DefTarget {
    /// Dense index: registers first, then flags.
    fn slot(self) -> usize {
        match self {
            DefTarget::Grf(r) => r.0 as usize,
            DefTarget::Flag(f) => NUM_GRF as usize + f.index(),
        }
    }
}

/// One definition site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Def {
    /// Instruction index, or `None` for a synthetic entry definition.
    pub site: Option<usize>,
    /// What the definition writes.
    pub target: DefTarget,
    /// Whether the write is predicated (merges rather than replaces).
    pub predicated: bool,
}

struct ReachingAnalysis<'d> {
    defs: &'d [Def],
    /// Definition indices per target slot, for kill computation.
    by_slot: Vec<Vec<usize>>,
    entry_fact: DefSet,
}

impl Analysis for ReachingAnalysis<'_> {
    type Fact = DefSet;

    fn direction(&self) -> Direction {
        Direction::Forward
    }

    fn boundary(&self) -> DefSet {
        self.entry_fact.clone()
    }

    fn top(&self) -> DefSet {
        DefSet::empty(self.defs.len())
    }

    fn join(&self, into: &mut DefSet, from: &DefSet) -> bool {
        into.union_with(from)
    }

    fn transfer(&self, cfg: &Cfg<'_>, block: usize, fact: &DefSet) -> DefSet {
        let mut reach = fact.clone();
        for i in cfg.block_range(block) {
            self.step(i, &mut reach);
        }
        reach
    }
}

impl ReachingAnalysis<'_> {
    /// Apply instruction `i`'s definitions to `reach`.
    fn step(&self, i: usize, reach: &mut DefSet) {
        // `defs` is ordered: entry pseudo-defs (`site == None`, which
        // sorts before every `Some`) first, then instruction defs by
        // ascending site. Instruction `i`'s defs are therefore one
        // contiguous run — binary-search its bounds instead of
        // scanning the whole table once per instruction.
        let lo = self.defs.partition_point(|d| d.site < Some(i));
        let hi = self.defs.partition_point(|d| d.site <= Some(i));
        for d in lo..hi {
            let def = &self.defs[d];
            if !def.predicated {
                // Strong update: an unpredicated write kills every
                // other definition of the same target.
                for &other in &self.by_slot[def.target.slot()] {
                    if other != d {
                        reach.remove(other);
                    }
                }
            }
            reach.insert(d);
        }
    }
}

/// Reaching-definitions solution at instruction granularity.
#[derive(Debug)]
pub struct ReachingDefs {
    /// All definition sites, entry pseudo-defs first.
    pub defs: Vec<Def>,
    /// Reaching set just before each instruction.
    pub reach_in: Vec<DefSet>,
}

impl ReachingDefs {
    /// Solve over `cfg`, seeding `entry_defined` registers/flags as
    /// defined at kernel entry.
    pub fn compute(cfg: &Cfg<'_>, entry_defined: &RegSet) -> ReachingDefs {
        let mut defs = Vec::new();
        for r in entry_defined.iter_regs() {
            defs.push(Def {
                site: None,
                target: DefTarget::Grf(r),
                predicated: false,
            });
        }
        for f in entry_defined.iter_flags() {
            defs.push(Def {
                site: None,
                target: DefTarget::Flag(f),
                predicated: false,
            });
        }
        for (i, instr) in cfg.instrs.iter().enumerate() {
            let written = defs_targets(instr);
            for target in written {
                defs.push(Def {
                    site: Some(i),
                    target,
                    predicated: instr.pred.is_some(),
                });
            }
        }

        let mut by_slot = vec![Vec::new(); NUM_GRF as usize + 2];
        for (d, def) in defs.iter().enumerate() {
            by_slot[def.target.slot()].push(d);
        }
        let mut entry_fact = DefSet::empty(defs.len());
        for (d, def) in defs.iter().enumerate() {
            if def.site.is_none() {
                entry_fact.insert(d);
            }
        }

        let analysis = ReachingAnalysis {
            defs: &defs,
            by_slot,
            entry_fact,
        };
        let sol = solve(cfg, &analysis);

        let n = cfg.instrs.len();
        let mut reach_in = vec![DefSet::empty(defs.len()); n];
        for b in 0..cfg.num_blocks() {
            let mut reach = sol.entry[b].clone();
            for i in cfg.block_range(b) {
                reach_in[i] = reach.clone();
                analysis.step(i, &mut reach);
            }
        }

        ReachingDefs { defs, reach_in }
    }

    /// Whether any definition of `target` reaches instruction `i`.
    pub fn is_defined(&self, i: usize, target: DefTarget) -> bool {
        self.reach_in[i]
            .iter()
            .any(|d| self.defs[d].target == target)
    }

    /// Definitions of `target` reaching instruction `i`.
    pub fn defs_of(&self, i: usize, target: DefTarget) -> impl Iterator<Item = &Def> + '_ {
        self.reach_in[i]
            .iter()
            .map(|d| &self.defs[d])
            .filter(move |d| d.target == target)
    }
}

/// Targets written by an instruction, as [`DefTarget`]s.
fn defs_targets(instr: &gen_isa::Instruction) -> Vec<DefTarget> {
    let set = defs(instr);
    let mut out: Vec<DefTarget> = set.iter_regs().map(DefTarget::Grf).collect();
    out.extend(set.iter_flags().map(DefTarget::Flag));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gen_isa::builder::KernelBuilder;
    use gen_isa::{ExecSize, Src};

    #[test]
    fn entry_defs_and_strong_updates() {
        // r2 = r1 + 1 ; r2 = r2 * 2 ; eot — with r0/r1 entry-defined.
        let mut b = KernelBuilder::new("k");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S1, Reg(2), Src::Reg(Reg(1)), Src::Imm(1))
            .mul(ExecSize::S1, Reg(2), Src::Reg(Reg(2)), Src::Imm(2))
            .eot();
        let flat = b.build().unwrap().flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let mut entry = RegSet::EMPTY;
        entry.insert_reg(Reg(0));
        entry.insert_reg(Reg(1));
        let rd = ReachingDefs::compute(&cfg, &entry);

        // r1 read at instr 0 is defined (entry pseudo-def); r2 is not.
        assert!(rd.is_defined(0, DefTarget::Grf(Reg(1))));
        assert!(!rd.is_defined(0, DefTarget::Grf(Reg(2))));
        // At the mul, exactly one def of r2 reaches (the add).
        let reaching: Vec<_> = rd.defs_of(1, DefTarget::Grf(Reg(2))).collect();
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].site, Some(0));
        // At the eot, the mul's strong update replaced the add's def.
        let reaching: Vec<_> = rd.defs_of(2, DefTarget::Grf(Reg(2))).collect();
        assert_eq!(reaching.len(), 1);
        assert_eq!(reaching[0].site, Some(1));
    }

    #[test]
    fn undefined_register_has_no_reaching_defs() {
        let mut b = KernelBuilder::new("k");
        let bb = b.entry_block();
        b.block_mut(bb)
            .add(ExecSize::S1, Reg(3), Src::Reg(Reg(9)), Src::Imm(1))
            .eot();
        let flat = b.build().unwrap().flatten();
        let cfg = Cfg::from_instrs(&flat.instrs).unwrap();
        let rd = ReachingDefs::compute(&cfg, &RegSet::EMPTY);
        assert!(!rd.is_defined(0, DefTarget::Grf(Reg(9))));
    }
}
