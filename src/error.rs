//! The suite-wide error taxonomy.
//!
//! Every layer of the stack reports failures through its own typed
//! error — [`DeviceError`] from the driver, [`ExecError`] from the
//! functional executor, [`RunError`] from the OpenCL runtime,
//! [`SelectError`] from SimPoint, [`DecodeError`] from the ISA
//! decoder, [`MergeError`]/[`PipelineError`] from selection.
//! [`GtPinError`] unifies them behind one `From`-convertible type so
//! the CLI (and any embedder) can match on a single enum, report a
//! stable [`kind`](GtPinError::kind) label, and still reach the
//! structured payload of the layer that actually failed.

use gen_isa::DecodeError;
use gpu_device::executor::ExecError;
use gpu_device::jit::JitError;
use gtpin_analyze::VerifyError;
use gtpin_chaos::ChaosError;
use gtpin_durable::JournalError;
use gtpin_obs::reader::ObsError;
use gtpin_serve::ServeError;
use ocl_runtime::device::DeviceError;
use ocl_runtime::runtime::RunError;
use simpoint::SelectError;
use subset_select::{MergeError, PipelineError};

/// Any failure the GT-Pin suite can report, by originating layer.
#[derive(Debug)]
pub enum GtPinError {
    /// The device/driver layer failed (JIT, launch, watchdog).
    Device(DeviceError),
    /// The functional executor faulted.
    Exec(ExecError),
    /// JIT compilation failed outside a driver context.
    Jit(JitError),
    /// The OpenCL runtime rejected or failed the program.
    Run(RunError),
    /// SimPoint selection failed.
    Select(SelectError),
    /// A kernel binary failed to decode.
    Decode(DecodeError),
    /// The instrumentation-safety verifier rejected a rewrite.
    Verify(VerifyError),
    /// Profile and timing data did not line up.
    Merge(MergeError),
    /// The profiling pipeline failed.
    Pipeline(PipelineError),
    /// The durable run journal could not be created, recovered, or
    /// appended to.
    Journal(JournalError),
    /// The GTOBS01 telemetry journal failed CRC, version, or
    /// structural checks.
    Obs(ObsError),
    /// The serving layer failed (socket, wire protocol, session
    /// journal).
    Serve(ServeError),
    /// The chaos harness itself failed (its own journal) — scenario
    /// failures are reported results, not this.
    Chaos(ChaosError),
    /// A served session failed on the daemon side; `kind` is the
    /// daemon's `error[kind]` label reflected back through the
    /// client, so scripts dispatch on remote failures exactly as on
    /// local ones.
    Remote {
        /// The daemon's stable error-kind label.
        kind: String,
        /// The daemon's error message.
        message: String,
    },
    /// The run budget was exhausted; the partial-result report was
    /// already printed and the exit is nonzero by design.
    Budget(String),
    /// A filesystem operation failed.
    Io(std::io::Error),
    /// JSON serialization or parsing failed.
    Json(serde_json::Error),
    /// Anything else (CLI argument parsing, ad-hoc messages).
    Msg(String),
}

impl GtPinError {
    /// Stable short label for the failing layer — the CLI prints
    /// `error[kind]: ...` so scripts can dispatch without parsing
    /// prose. For [`GtPinError::Remote`] the label is whatever the
    /// daemon reported, hence `&str` rather than `&'static str`.
    pub fn kind(&self) -> &str {
        match self {
            GtPinError::Device(_) => "device",
            GtPinError::Exec(_) => "exec",
            GtPinError::Jit(_) => "jit",
            GtPinError::Run(_) => "run",
            GtPinError::Select(_) => "select",
            GtPinError::Decode(_) => "decode",
            GtPinError::Verify(_) => "verify",
            GtPinError::Merge(_) => "merge",
            GtPinError::Pipeline(_) => "pipeline",
            GtPinError::Journal(_) => "journal",
            GtPinError::Obs(_) => "obs",
            GtPinError::Serve(e) => e.kind(),
            GtPinError::Chaos(_) => "chaos",
            GtPinError::Remote { kind, .. } => kind,
            GtPinError::Budget(_) => "budget",
            GtPinError::Io(_) => "io",
            GtPinError::Json(_) => "json",
            GtPinError::Msg(_) => "cli",
        }
    }
}

impl std::fmt::Display for GtPinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GtPinError::Device(e) => write!(f, "{e}"),
            GtPinError::Exec(e) => write!(f, "{e}"),
            GtPinError::Jit(e) => write!(f, "{e}"),
            GtPinError::Run(e) => write!(f, "{e}"),
            GtPinError::Select(e) => write!(f, "{e}"),
            GtPinError::Decode(e) => write!(f, "{e}"),
            GtPinError::Verify(e) => write!(f, "{e}"),
            GtPinError::Merge(e) => write!(f, "{e}"),
            GtPinError::Pipeline(e) => write!(f, "{e}"),
            GtPinError::Journal(e) => write!(f, "{e}"),
            GtPinError::Obs(e) => write!(f, "{e}"),
            GtPinError::Serve(e) => write!(f, "{e}"),
            GtPinError::Chaos(e) => write!(f, "{e}"),
            GtPinError::Remote { message, .. } => f.write_str(message),
            GtPinError::Budget(s) => f.write_str(s),
            GtPinError::Io(e) => write!(f, "{e}"),
            GtPinError::Json(e) => write!(f, "{e}"),
            GtPinError::Msg(s) => f.write_str(s),
        }
    }
}

impl std::error::Error for GtPinError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GtPinError::Device(e) => Some(e),
            GtPinError::Exec(e) => Some(e),
            GtPinError::Jit(e) => Some(e),
            GtPinError::Run(e) => Some(e),
            GtPinError::Select(e) => Some(e),
            GtPinError::Decode(e) => Some(e),
            GtPinError::Verify(e) => Some(e),
            GtPinError::Merge(e) => Some(e),
            GtPinError::Pipeline(e) => Some(e),
            GtPinError::Journal(e) => Some(e),
            GtPinError::Obs(e) => Some(e),
            GtPinError::Serve(e) => Some(e),
            GtPinError::Chaos(e) => Some(e),
            GtPinError::Remote { .. } => None,
            GtPinError::Budget(_) => None,
            GtPinError::Io(e) => Some(e),
            GtPinError::Json(e) => Some(e),
            GtPinError::Msg(_) => None,
        }
    }
}

macro_rules! from_impl {
    ($source:ty => $variant:ident) => {
        impl From<$source> for GtPinError {
            fn from(e: $source) -> GtPinError {
                GtPinError::$variant(e)
            }
        }
    };
}

from_impl!(DeviceError => Device);
from_impl!(ExecError => Exec);
from_impl!(JitError => Jit);
from_impl!(RunError => Run);
from_impl!(SelectError => Select);
from_impl!(DecodeError => Decode);
from_impl!(VerifyError => Verify);
from_impl!(MergeError => Merge);
from_impl!(PipelineError => Pipeline);
from_impl!(JournalError => Journal);
from_impl!(ObsError => Obs);
from_impl!(ServeError => Serve);
from_impl!(ChaosError => Chaos);
from_impl!(std::io::Error => Io);
from_impl!(serde_json::Error => Json);
from_impl!(String => Msg);

impl From<&str> for GtPinError {
    fn from(s: &str) -> GtPinError {
        GtPinError::Msg(s.to_string())
    }
}

impl From<std::num::ParseIntError> for GtPinError {
    fn from(e: std::num::ParseIntError) -> GtPinError {
        GtPinError::Msg(e.to_string())
    }
}

impl From<std::num::ParseFloatError> for GtPinError {
    fn from(e: std::num::ParseFloatError) -> GtPinError {
        GtPinError::Msg(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_distinct_and_stable() {
        let errs: Vec<GtPinError> = vec![
            DeviceError::ProgramNotBuilt.into(),
            ExecError::BudgetExceeded { budget: 1 }.into(),
            RunError::BadProgram("x".into()).into(),
            SelectError::NoIntervals.into(),
            DecodeError::MissingTerminator.into(),
            "oops".into(),
        ];
        let kinds: Vec<&str> = errs.iter().map(GtPinError::kind).collect();
        assert_eq!(kinds, ["device", "exec", "run", "select", "decode", "cli"]);
        for e in &errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn nested_device_error_keeps_structure() {
        let e: GtPinError = RunError::Device(DeviceError::LaunchTimeout {
            kernel: "k".into(),
            attempts: 4,
            waited_virtual_ns: 123,
        })
        .into();
        assert_eq!(e.kind(), "run");
        assert!(e.to_string().contains("timed out after 4 attempt(s)"));
    }
}
