//! `gtpin` — command-line front end for the GT-Pin reproduction.
//!
//! ```text
//! gtpin list                          list the 25 benchmark applications
//! gtpin run <app> [options]           profile an app with GT-Pin
//!     --scale test|default            workload scale (default: default)
//!     --time-kernels                  enable the kernel timer tool
//!     --trace-memory                  enable memory tracing
//!     --json <path>                   dump the profile as JSON
//! gtpin select <app> [threshold%]     explore configs and print selections
//! gtpin disasm <app> [kernel-index]   disassemble a JIT-compiled kernel
//! gtpin lint <app>|--all [--json <p>] run the static lints over every
//!                                     kernel of an app (or all apps) and
//!                                     verify the instrumentation rewrite
//!                                     is safe; nonzero exit on Error-
//!                                     severity findings
//! gtpin luxmark                       compare HD4000 vs HD4600 scores
//! gtpin obs-report [app]              run an instrumented exploration and
//!                                     print the telemetry summary table
//!                                     (artifacts land in GTPIN_OBS_DIR,
//!                                     default target/obs)
//! gtpin obs-verify <journal.jsonl>    check a journal is non-empty,
//!                                     well-formed JSONL
//! gtpin faults-matrix [--seed N]      run the workload suite under every
//!                                     GTPIN_FAULTS scenario twice and
//!                                     assert the degradation contract
//! ```

use gtpin_suite::device::{Gpu, GpuConfig};
use gtpin_suite::faults;
use gtpin_suite::gtpin::{AppCharacterization, GtPin, RewriteConfig};
use gtpin_suite::isa::disasm::disassemble_flat;
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::selection::{profile_app, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{all_specs, build_program, luxmark_score, spec_by_name, Scale};
use gtpin_suite::GtPinError;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("select") => cmd_select(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("luxmark") => cmd_luxmark(),
        Some("obs-report") => cmd_obs_report(&args[1..]),
        Some("obs-verify") => cmd_obs_verify(&args[1..]),
        Some("faults-matrix") => cmd_faults_matrix(&args[1..]),
        _ => {
            eprintln!(
                "usage: gtpin <list|run|select|disasm|lint|luxmark|obs-report|obs-verify|faults-matrix> [args]"
            );
            eprintln!("       see crate docs for options");
            std::process::exit(2);
        }
    };
    // With GTPIN_FAULTS armed, always report what fired and what was
    // recovered — on success and on failure alike.
    if let Some(summary) = faults::summary_if_enabled() {
        eprintln!("{summary}");
    }
    if let Err(e) = result {
        eprintln!("error[{}]: {e}", e.kind());
        std::process::exit(1);
    }
}

type CliResult = Result<(), GtPinError>;

fn cmd_list() -> CliResult {
    for spec in all_specs() {
        println!(
            "{:28} {:26} {:>3} kernels {:>6} invocations",
            spec.name,
            format!("[{:?}]", spec.suite),
            spec.unique_kernels,
            spec.invocations
        );
    }
    Ok(())
}

fn parse_app(args: &[String]) -> Result<gtpin_suite::workloads::WorkloadSpec, String> {
    let name = args
        .first()
        .ok_or("missing application name; try `gtpin list`")?;
    spec_by_name(name).ok_or_else(|| format!("unknown application {name}; try `gtpin list`"))
}

fn cmd_run(args: &[String]) -> CliResult {
    let spec = parse_app(args)?;
    let scale = if args.iter().any(|a| a == "--scale") {
        let i = args
            .iter()
            .position(|a| a == "--scale")
            .expect("just checked");
        match args.get(i + 1).map(String::as_str) {
            Some("test") => Scale::Test,
            Some("default") | None => Scale::Default,
            Some(other) => return Err(format!("unknown scale {other}").into()),
        }
    } else {
        Scale::Default
    };
    let config = RewriteConfig {
        count_basic_blocks: true,
        time_kernels: args.iter().any(|a| a == "--time-kernels"),
        trace_memory: args.iter().any(|a| a == "--trace-memory"),
        naive_per_instruction_counters: false,
    };

    let program = build_program(&spec, scale);
    let mut gpu = Gpu::new(GpuConfig::hd4000());
    let gtpin = GtPin::new(config);
    gtpin.attach(&mut gpu);
    let mut rt = OclRuntime::new(gpu);
    let report = rt.run(&program, Schedule::Replay)?;
    let profile = gtpin.profile(spec.name);
    let device = rt.into_device();
    let mut launch_stats = gtpin_suite::device::stats::ExecutionStats::default();
    for launch in device.launches() {
        launch_stats.merge(&launch.stats);
    }

    println!(
        "{}",
        AppCharacterization::new(&report.cofluent, &profile).with_measured_overhead(&launch_stats)
    );
    println!(
        "\ninstrumentation: {:.2}x dynamic instruction overhead across {} kernels",
        profile.dynamic_overhead_factor(),
        profile.unique_kernels()
    );

    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).ok_or("--json needs a path")?;
        std::fs::write(path, serde_json::to_string_pretty(&profile)?)?;
        println!("profile written to {path}");
    }
    Ok(())
}

fn cmd_select(args: &[String]) -> CliResult {
    let spec = parse_app(args)?;
    let threshold: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(3.0);
    let program = build_program(&spec, Scale::Default);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let data = &profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(data);
    let ex = Exploration::run(data, approx, &SimpointConfig::default());

    let best = ex.min_error().ok_or("no configurations evaluated")?;
    println!(
        "min-error:      {:24} error {:.3}%  speedup {:.1}x  k={}",
        best.config.to_string(),
        best.error_pct,
        best.speedup(),
        best.selection.k
    );
    let co = ex
        .co_optimize(threshold)
        .ok_or("no configurations evaluated")?;
    println!(
        "co-opt @ {threshold:>4}%: {:24} error {:.3}%  speedup {:.1}x  k={}",
        co.config.to_string(),
        co.error_pct,
        co.speedup(),
        co.selection.k
    );
    for pick in &co.selection.picks {
        let iv = co.intervals[pick.interval];
        println!(
            "  simulate invocations [{:>6}, {:>6})  ratio {:.2}%",
            iv.start,
            iv.end,
            pick.ratio * 100.0
        );
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let spec = parse_app(args)?;
    let index: usize = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0);
    let program = build_program(&spec, Scale::Test);
    let mut gpu = Gpu::new(GpuConfig::hd4000());
    use gtpin_suite::runtime::Device;
    gpu.build_program(&program.source)?;
    let kernel = gpu
        .driver()
        .kernel(index)
        .ok_or_else(|| format!("kernel index {index} out of range"))?;
    print!("{}", disassemble_flat(kernel));
    Ok(())
}

fn cmd_lint(args: &[String]) -> CliResult {
    use gtpin_suite::analyze::{lint_kernel, verify_rewrite, LintConfig, Severity};
    use gtpin_suite::device::jit::compile_kernel;
    use gtpin_suite::gtpin::rewriter::rewrite_binary;

    let specs: Vec<gtpin_suite::workloads::WorkloadSpec> =
        if args.first().map(String::as_str) == Some("--all") {
            all_specs()
        } else {
            vec![parse_app(args)?]
        };
    let verify_config = RewriteConfig {
        count_basic_blocks: true,
        time_kernels: true,
        trace_memory: true,
        naive_per_instruction_counters: false,
    };

    let mut all_diags = Vec::new();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut first_verify_failure: Option<GtPinError> = None;
    for spec in &specs {
        let program = build_program(spec, Scale::Test);
        for ir in &program.source.kernels {
            let kernel = compile_kernel(ir)?;
            kernels += 1;

            let diags = lint_kernel(&kernel, &LintConfig::for_metadata(&kernel.metadata))?;
            for d in &diags {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warning => warnings += 1,
                }
                println!("{}: {d}", spec.name);
            }
            all_diags.extend(diags);

            // Verifier leg: instrument with every tool enabled and
            // prove the rewrite only touches dead reserved state.
            let bytes = kernel.encode();
            let rw = rewrite_binary(&bytes, &verify_config, 0, 0).map_err(GtPinError::Msg)?;
            match verify_rewrite(&bytes, &rw.bytes) {
                Ok(report) => println!(
                    "{}: verify[ok] {} — {} probes, {} repaired branches",
                    spec.name, kernel.name, report.probes, report.repaired_branches
                ),
                Err(e) => {
                    eprintln!("{}: verify[FAIL] {}: {e}", spec.name, kernel.name);
                    if first_verify_failure.is_none() {
                        first_verify_failure = Some(e.into());
                    }
                }
            }
        }
    }

    println!(
        "\nlint: {} kernel(s) across {} app(s): {} error(s), {} warning(s)",
        kernels,
        specs.len(),
        errors,
        warnings
    );
    if let Some(i) = args.iter().position(|a| a == "--json") {
        let path = args.get(i + 1).ok_or("--json needs a path")?;
        std::fs::write(path, serde_json::to_string_pretty(&all_diags)?)?;
        println!("diagnostics written to {path}");
    }
    if let Some(e) = first_verify_failure {
        return Err(e);
    }
    if errors > 0 {
        return Err(format!("lint found {errors} error-severity finding(s)").into());
    }
    Ok(())
}

fn cmd_obs_report(args: &[String]) -> CliResult {
    use gtpin_suite::obs;
    // Force telemetry on before anything records, so the report works
    // without the user exporting GTPIN_OBS.
    if !obs::force_enable() {
        return Err("telemetry registry was already initialized disabled".into());
    }
    let name = args
        .first()
        .map(String::as_str)
        .unwrap_or("cb-gaussian-image");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown application {name}"))?;

    let program = build_program(&spec, Scale::Default);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let approx = gtpin_suite::selection::default_approx_target(&profiled.data);
    let ex = Exploration::run(&profiled.data, approx, &SimpointConfig::default());

    println!(
        "telemetry for {} ({} invocations profiled, {} configurations evaluated)\n",
        spec.name,
        profiled.data.invocations.len(),
        ex.evaluations.len()
    );
    print!("{}", obs::global().summary());
    for path in obs::write_artifacts()? {
        println!("wrote {}", path.display());
    }
    if let Some(journal) = obs::global().journal_path() {
        println!("journal streamed to {}", journal.display());
    }
    Ok(())
}

fn cmd_obs_verify(args: &[String]) -> CliResult {
    let path = args.first().ok_or("obs-verify needs a journal path")?;
    let text = std::fs::read_to_string(path)?;
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        serde_json::from_str_value(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        events += 1;
    }
    if events == 0 {
        return Err(format!("{path}: journal is empty").into());
    }
    println!("{path}: {events} well-formed JSONL event(s)");
    Ok(())
}

fn cmd_luxmark() -> CliResult {
    let ivy = luxmark_score(GpuConfig::hd4000());
    let hsw = luxmark_score(GpuConfig::hd4600());
    println!("HD4000 (Ivy Bridge): {ivy:.0}   (paper: 269)");
    println!("HD4600 (Haswell):    {hsw:.0}   (paper: 351)");
    Ok(())
}

/// One deterministic trial of the suite under a fault plan: every app
/// profiled with full instrumentation, outcomes digested.
struct MatrixRun {
    /// FNV digest over per-app profile JSON (or error string).
    digest: u64,
    /// Drained fault accounting for the trial.
    accounting: Vec<(String, u64)>,
    /// Apps that completed / failed with a typed error.
    completed: usize,
    failed: usize,
    /// Degradation totals observed across all launches.
    early_drains: u64,
    dropped: u64,
    quarantined: u64,
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn matrix_run(
    apps: &[gtpin_suite::workloads::WorkloadSpec],
    plan: Option<&faults::FaultPlan>,
) -> MatrixRun {
    match plan {
        Some(p) => faults::install(p.clone()),
        None => faults::disable(),
    }
    let mut run = MatrixRun {
        digest: 0xcbf2_9ce4_8422_2325,
        accounting: Vec::new(),
        completed: 0,
        failed: 0,
        early_drains: 0,
        dropped: 0,
        quarantined: 0,
    };
    for spec in apps {
        let program = build_program(spec, Scale::Test);
        let mut config = GpuConfig::hd4000();
        // Force the parallel executor path so the shard-overflow and
        // worker-panic seams are actually exercised.
        config.exec.threads = 4;
        let mut gpu = Gpu::new(config);
        let gtpin = GtPin::new(RewriteConfig {
            count_basic_blocks: true,
            time_kernels: true,
            trace_memory: true,
            naive_per_instruction_counters: false,
        });
        gtpin.attach(&mut gpu);
        let mut rt = OclRuntime::new(gpu);
        match rt.run(&program, Schedule::Replay) {
            Ok(_) => {
                run.completed += 1;
                let profile = gtpin.profile(spec.name);
                for inv in &profile.invocations {
                    run.dropped += inv.dropped_records;
                    run.quarantined += inv.quarantined_records;
                }
                let json = serde_json::to_string(&profile)
                    .unwrap_or_else(|e| format!("unserializable profile: {e}"));
                run.digest = fnv_fold(run.digest, json.as_bytes());
                let device = rt.into_device();
                run.early_drains += device
                    .launches()
                    .iter()
                    .map(|l| l.stats.trace_early_drains)
                    .sum::<u64>();
            }
            Err(e) => {
                run.failed += 1;
                run.digest = fnv_fold(run.digest, e.to_string().as_bytes());
            }
        }
    }
    run.accounting = faults::take_accounting();
    faults::disable();
    run
}

fn cmd_faults_matrix(args: &[String]) -> CliResult {
    let seed: u64 = if let Some(i) = args.iter().position(|a| a == "--seed") {
        args.get(i + 1).ok_or("--seed needs a value")?.parse()?
    } else {
        faults::DEFAULT_SEED
    };
    let apps: Vec<gtpin_suite::workloads::WorkloadSpec> = all_specs().into_iter().take(3).collect();
    let names: Vec<&str> = apps.iter().map(|s| s.name).collect();
    println!("faults-matrix: seed {seed:#x}, apps {names:?}, each scenario run twice\n");

    use faults::{site, FaultPlan};
    let scenarios: Vec<(&str, Option<FaultPlan>)> = vec![
        ("baseline", None),
        ("zero-rate", Some(FaultPlan::quiescent(seed))),
        (
            "shard-overflow",
            Some(FaultPlan::single(site::SHARD_OVERFLOW, 1.0, seed)),
        ),
        (
            "record-corrupt",
            Some(FaultPlan::single(site::RECORD_CORRUPT, 0.05, seed)),
        ),
        (
            "jit-fail",
            Some(FaultPlan::single(site::JIT_FAIL, 0.4, seed)),
        ),
        (
            "launch-hang",
            Some(FaultPlan::single(site::LAUNCH_HANG, 0.3, seed)),
        ),
        (
            "worker-panic",
            Some(FaultPlan::single(site::WORKER_PANIC, 0.5, seed)),
        ),
        ("all", Some(FaultPlan::uniform(0.2, seed))),
    ];

    let mut violations: Vec<String> = Vec::new();
    let mut baseline_digest = None;
    println!(
        "{:15} {:>4} {:>4} {:>7} {:>7} {:>7} {:>9}  contract",
        "scenario", "ok", "err", "drains", "dropped", "quar", "injected"
    );
    for (name, plan) in &scenarios {
        let first = matrix_run(&apps, plan.as_ref());
        let second = matrix_run(&apps, plan.as_ref());

        if first.digest != second.digest || first.accounting != second.accounting {
            violations.push(format!(
                "{name}: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.digest, second.digest
            ));
        }
        let injected: u64 = first
            .accounting
            .iter()
            .filter(|(k, _)| k.starts_with("injected."))
            .map(|(_, v)| v)
            .sum();
        let mut notes: Vec<&str> = vec!["replayed"];
        match *name {
            "baseline" => {
                baseline_digest = Some(first.digest);
            }
            // Scenarios whose recovery is lossless must be
            // indistinguishable from the no-fault profile.
            "zero-rate" | "shard-overflow" | "worker-panic" => {
                if baseline_digest != Some(first.digest) {
                    violations.push(format!("{name}: profile digest diverged from baseline"));
                } else {
                    notes.push("baseline-identical");
                }
                if *name == "shard-overflow" && first.early_drains == 0 {
                    violations.push("shard-overflow: no early drains recorded".into());
                }
                if *name != "zero-rate" && injected == 0 {
                    violations.push(format!("{name}: no faults fired at its configured rate"));
                }
            }
            "record-corrupt" => {
                if injected > 0 && first.quarantined == 0 {
                    violations.push(
                        "record-corrupt: corrupt records injected but none quarantined".into(),
                    );
                } else {
                    notes.push("quarantined");
                }
            }
            // Degraded-but-accounted: every app must either complete
            // or fail with a typed error; nothing may panic (a panic
            // would have aborted this process).
            "jit-fail" | "launch-hang" | "all" => {
                if first.completed + first.failed != apps.len() {
                    violations.push(format!("{name}: some apps neither completed nor failed"));
                } else {
                    notes.push("all-accounted");
                }
                if injected == 0 {
                    violations.push(format!("{name}: no faults fired at its configured rate"));
                }
            }
            _ => {}
        }
        println!(
            "{:15} {:>4} {:>4} {:>7} {:>7} {:>7} {:>9}  {}",
            name,
            first.completed,
            first.failed,
            first.early_drains,
            first.dropped,
            first.quarantined,
            injected,
            notes.join(", ")
        );
    }

    if violations.is_empty() {
        println!(
            "\nfaults-matrix: all {} scenarios honored the degradation contract",
            scenarios.len()
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("faults-matrix: {} contract violation(s)", violations.len()).into())
    }
}
