//! `gtpin` — command-line front end for the GT-Pin reproduction.
//!
//! ```text
//! gtpin list                          list the 25 benchmark applications
//! gtpin run <app> [options]           profile an app with GT-Pin
//!     --scale test|default            workload scale (default: default)
//!     --time-kernels                  enable the kernel timer tool
//!     --trace-memory                  enable memory tracing
//!     --json <path>                   dump the profile as JSON
//!     --journal <dir>                 journal the profile to a fresh dir
//!     --resume <dir>                  recover <dir>; skip the run if its
//!                                     profile is already journaled
//! gtpin select <app> [threshold%]     explore configs and print selections
//! gtpin explore <app>...|--all [opts] supervised exploration sweep over
//!                                     many apps (crash-consistent)
//!     --threshold <pct>               co-opt error threshold (default 3)
//!     --scale test|default            workload scale (default: default)
//!     --journal <dir>                 journal completed units to a fresh
//!                                     directory as the sweep runs
//!     --resume <dir>                  recover <dir>, skip journaled
//!                                     units; the final report is
//!                                     bit-identical to an uninterrupted
//!                                     run
//!     (supervision knobs come from GTPIN_DEADLINE_MS, GTPIN_BREAKER,
//!     GTPIN_MAX_TASKS, GTPIN_MAX_VIRTUAL_MS; budget exhaustion prints
//!     the partial report and exits nonzero with error[budget])
//! gtpin sim <app> [options]           detailed-simulate an app's launches
//!                                     and print a deterministic stats
//!                                     digest (worker count from
//!                                     GTPIN_SIM_THREADS, falling back to
//!                                     GTPIN_THREADS; the digest is
//!                                     bit-identical at every count)
//!     --scale test|default            workload scale (default: test)
//!     --launches <n>                  simulate only the first n launches
//! gtpin disasm <app> [kernel-index]   disassemble a JIT-compiled kernel
//! gtpin lint <app>|--all [--json <p>] run the static lints over every
//!                                     kernel of an app (or all apps) and
//!                                     verify the instrumentation rewrite
//!                                     is safe; nonzero exit on Error-
//!                                     severity findings
//! gtpin analyze <app>|--all           structural analysis of every kernel:
//!                                     loop forest with nesting depth and
//!                                     trip bounds, value ranges, and the
//!                                     device-derived static cycle estimate
//!                                     with per-block provenance; ends with
//!                                     a deterministic digest (bit-identical
//!                                     at every GTPIN_THREADS)
//!     [--json <path>]                 also dump the reports as JSON
//! gtpin luxmark                       compare HD4000 vs HD4600 scores
//! gtpin obs-report [app]              run an instrumented exploration and
//!                                     print the telemetry summary table
//!                                     (artifacts land in GTPIN_OBS_DIR,
//!                                     default target/obs)
//!     --journal <journal.gtobs>       summarize an existing binary journal
//!                                     instead of running anything
//! gtpin obs-verify <journal>          verify a journal: GTOBS01 binary
//!                                     journals get full CRC + version +
//!                                     structure checks, JSONL journals the
//!                                     legacy well-formedness check
//! gtpin obs-convert <journal.gtobs>   convert a binary journal to text
//!     [--jsonl <path>]                write the JSONL journal here
//!     [--trace <path>]                write the Chrome trace_event JSON
//!                                     (no flags: JSONL to stdout)
//! gtpin obs-timeline <journal.gtobs>  per-EU / per-epoch utilization from
//!                                     the detailed simulator's provenance
//!                                     events (virtual cycles on stdout —
//!                                     identical at every thread count —
//!                                     wall-clock barrier stats on stderr)
//! gtpin faults-matrix [--seed N]      run the workload suite under every
//!                                     GTPIN_FAULTS scenario twice and
//!                                     assert the degradation contract
//! gtpin chaos [options]               seeded end-to-end chaos: each seed
//!                                     derives a multi-site fault plan, a
//!                                     kill/resume schedule across the
//!                                     profile/explore/sim/serve pipeline,
//!                                     and a thread count; oracles check
//!                                     conservation, replay identity,
//!                                     resume identity, and bounded
//!                                     restarts; failures shrink to a
//!                                     minimal (seed, site-set, kill-point)
//!                                     triple; ends with a deterministic
//!                                     digest (bit-identical at every
//!                                     GTPIN_THREADS and across a mid-run
//!                                     kill/resume of the chaos run itself)
//!     --seeds <n>                     scenarios to run (default 5)
//!     --seed-base <n>                 first seed (default GTPIN_CHAOS_SEED
//!                                     or 0)
//!     --journal <dir>                 journal completed scenarios to a
//!                                     fresh directory
//!     --resume <dir>                  recover <dir>; skip completed
//!                                     scenarios, identical final digest
//!     --max-restarts <n>              sweep crash/resume budget per
//!                                     scenario (default
//!                                     GTPIN_CHAOS_MAX_RESTARTS or 200)
//!     --self-test                     run the shrinker self-test and exit
//! gtpin serve [options]               run the profiling daemon on a Unix
//!                                     socket until SIGTERM/SIGINT drains
//!                                     it (admission knobs come from
//!                                     GTPIN_DEADLINE_MS, GTPIN_BREAKER,
//!                                     GTPIN_MAX_TASKS,
//!                                     GTPIN_MAX_VIRTUAL_MS)
//!     --socket <path>                 socket path (default
//!                                     target/gtpin.sock)
//!     --journal <dir>                 journal sessions to a fresh dir
//!     --resume <dir>                  recover <dir>: replay completed
//!                                     sessions, recompute interrupted
//!                                     ones; responses are bit-identical
//!                                     to an uninterrupted daemon
//!     --max-sessions <n>              concurrent-session cap (default 8);
//!                                     the n+1th sheds error[busy]
//! gtpin request <kind> <app> [opts]   submit one request to a running
//!                                     daemon and stream the response;
//!                                     exits nonzero on error[*] payloads;
//!                                     transient failures (connect/IO/wire
//!                                     errors, error[busy] sheds) retry
//!                                     with deterministic seeded jittered
//!                                     backoff (GTPIN_RETRY_MAX attempts,
//!                                     GTPIN_RETRY_BASE_MS base delay)
//!     kinds: profile [--scale s], explore [--scale s] [--threshold pct],
//!            sim [--launches n], lint, analyze; --socket <path> selects
//!            the daemon
//! ```

use gtpin_suite::device::{Gpu, GpuConfig};
use gtpin_suite::durable::{Journal, JournalError};
use gtpin_suite::faults;
use gtpin_suite::gtpin::{AppCharacterization, GtPin, RewriteConfig};
use gtpin_suite::isa::disasm::disassemble_flat;
use gtpin_suite::par::SupervisorConfig;
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::selection::{profile_app, run_sweep, Exploration, SweepOptions};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{all_specs, build_program, luxmark_score, spec_by_name, Scale};
use gtpin_suite::GtPinError;
use serde::{Deserialize, Serialize};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Malformed GTPIN_* numeric knobs fail loudly before any work
    // runs — the library getters clamp leniently, but a user who set
    // GTPIN_THREADS=four or GTPIN_DEADLINE_MS=fast deserves an
    // error, not a silently ignored knob.
    if let Err(e) = gtpin_suite::par::validate_env() {
        let e: GtPinError = e.into();
        eprintln!("error[{}]: {e}", e.kind());
        std::process::exit(1);
    }
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("run") => cmd_run(&args[1..]),
        Some("select") => cmd_select(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("sim") => cmd_sim(&args[1..]),
        Some("disasm") => cmd_disasm(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("luxmark") => cmd_luxmark(),
        Some("obs-report") => cmd_obs_report(&args[1..]),
        Some("obs-verify") => cmd_obs_verify(&args[1..]),
        Some("obs-convert") => cmd_obs_convert(&args[1..]),
        Some("obs-timeline") => cmd_obs_timeline(&args[1..]),
        Some("faults-matrix") => cmd_faults_matrix(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("request") => cmd_request(&args[1..]),
        _ => {
            eprintln!(
                "usage: gtpin <list|run|select|explore|sim|disasm|lint|analyze|luxmark|obs-report|obs-verify|obs-convert|obs-timeline|faults-matrix|chaos|serve|request> [args]"
            );
            eprintln!("       see crate docs for options");
            std::process::exit(2);
        }
    };
    // With GTPIN_FAULTS armed, always report what fired and what was
    // recovered — on success and on failure alike.
    if let Some(summary) = faults::summary_if_enabled() {
        eprintln!("{summary}");
    }
    if let Err(e) = result {
        eprintln!("error[{}]: {e}", e.kind());
        std::process::exit(1);
    }
}

type CliResult = Result<(), GtPinError>;

fn cmd_list() -> CliResult {
    for spec in all_specs() {
        println!(
            "{:28} {:26} {:>3} kernels {:>6} invocations",
            spec.name,
            format!("[{:?}]", spec.suite),
            spec.unique_kernels,
            spec.invocations
        );
    }
    Ok(())
}

fn parse_app(args: &[String]) -> Result<gtpin_suite::workloads::WorkloadSpec, String> {
    let name = args
        .first()
        .ok_or("missing application name; try `gtpin list`")?;
    spec_by_name(name).ok_or_else(|| format!("unknown application {name}; try `gtpin list`"))
}

/// The value following `--flag`, if the flag is present. A flag given
/// without a value (end of args, or another flag in the value slot)
/// is a typed CLI error, never a panic.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, GtPinError> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v.as_str())),
            _ => Err(format!("{flag} needs a value").into()),
        },
    }
}

fn parse_scale(args: &[String]) -> Result<Scale, GtPinError> {
    match flag_value(args, "--scale")? {
        None | Some("default") => Ok(Scale::Default),
        Some("test") => Ok(Scale::Test),
        Some(other) => Err(format!("unknown scale {other} (known: test, default)").into()),
    }
}

/// `--journal` / `--resume` directories for the durable commands.
/// Mutually exclusive: `--journal` starts fresh, `--resume` recovers.
fn parse_journal_flags(args: &[String]) -> Result<(Option<PathBuf>, bool), GtPinError> {
    let journal = flag_value(args, "--journal")?;
    let resume = flag_value(args, "--resume")?;
    match (journal, resume) {
        (Some(_), Some(_)) => Err("--journal and --resume are mutually exclusive \
             (--resume already appends to the recovered journal)"
            .into()),
        (Some(dir), None) => Ok((Some(PathBuf::from(dir)), false)),
        (None, Some(dir)) => Ok((Some(PathBuf::from(dir)), true)),
        (None, None) => Ok((None, false)),
    }
}

/// One durable `gtpin run` unit: everything needed to reprint the
/// characterization (and re-dump `--json`) without re-running.
#[derive(Debug, Serialize, Deserialize)]
struct RunRecord {
    /// Identity of the run this record caches.
    key: String,
    /// The exact report text the fresh run printed.
    report: String,
    /// The profile, pre-serialized for `--json` on resume.
    profile_json: String,
}

fn cmd_run(args: &[String]) -> CliResult {
    let spec = parse_app(args)?;
    let scale = parse_scale(args)?;
    let config = RewriteConfig {
        count_basic_blocks: true,
        time_kernels: args.iter().any(|a| a == "--time-kernels"),
        trace_memory: args.iter().any(|a| a == "--trace-memory"),
        naive_per_instruction_counters: false,
    };
    let (journal_dir, resume) = parse_journal_flags(args)?;
    let key = format!(
        "run/{}/{:?}/tk={}/tm={}",
        spec.name, scale, config.time_kernels, config.trace_memory
    );

    let mut journal = None;
    let mut cached: Option<RunRecord> = None;
    if let Some(dir) = &journal_dir {
        if resume {
            let (j, recovery) = Journal::recover(dir)?;
            for payload in &recovery.records {
                let text = String::from_utf8_lossy(payload);
                match serde_json::from_str::<RunRecord>(&text) {
                    Ok(r) if r.key == key => cached = Some(r),
                    _ => {}
                }
            }
            journal = Some(j);
        } else {
            journal = Some(Journal::create(dir)?);
        }
    }

    let record = match cached {
        Some(record) => {
            eprintln!("resume: profile of {} replayed from the journal", spec.name);
            record
        }
        None => {
            let program = build_program(&spec, scale);
            let mut gpu = Gpu::new(GpuConfig::hd4000());
            let gtpin = GtPin::new(config);
            gtpin.attach(&mut gpu);
            let mut rt = OclRuntime::new(gpu);
            let report = rt.run(&program, Schedule::Replay)?;
            let profile = gtpin.profile(spec.name);
            let device = rt.into_device();
            let mut launch_stats = gtpin_suite::device::stats::ExecutionStats::default();
            for launch in device.launches() {
                launch_stats.merge(&launch.stats);
            }

            let text = format!(
                "{}\n\ninstrumentation: {:.2}x dynamic instruction overhead across {} kernels\n",
                AppCharacterization::new(&report.cofluent, &profile)
                    .with_measured_overhead(&launch_stats),
                profile.dynamic_overhead_factor(),
                profile.unique_kernels()
            );
            let record = RunRecord {
                key,
                report: text,
                profile_json: serde_json::to_string_pretty(&profile)?,
            };
            if let Some(j) = &mut journal {
                j.append(serde_json::to_string(&record)?.as_bytes())?;
            }
            record
        }
    };

    print!("{}", record.report);
    if let Some(path) = flag_value(args, "--json")? {
        std::fs::write(path, &record.profile_json)?;
        println!("profile written to {path}");
    }
    Ok(())
}

fn cmd_select(args: &[String]) -> CliResult {
    let spec = parse_app(args)?;
    let threshold: f64 = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(3.0);
    let program = build_program(&spec, Scale::Default);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let data = &profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(data);
    let ex = Exploration::run(data, approx, &SimpointConfig::default());

    let best = ex.min_error().ok_or("no configurations evaluated")?;
    println!(
        "min-error:      {:24} error {:.3}%  speedup {:.1}x  k={}",
        best.config.to_string(),
        best.error_pct,
        best.speedup(),
        best.selection.k
    );
    let co = ex
        .co_optimize(threshold)
        .ok_or("no configurations evaluated")?;
    println!(
        "co-opt @ {threshold:>4}%: {:24} error {:.3}%  speedup {:.1}x  k={}",
        co.config.to_string(),
        co.error_pct,
        co.speedup(),
        co.selection.k
    );
    for pick in &co.selection.picks {
        let iv = co.intervals[pick.interval];
        println!(
            "  simulate invocations [{:>6}, {:>6})  ratio {:.2}%",
            iv.start,
            iv.end,
            pick.ratio * 100.0
        );
    }
    Ok(())
}

/// `gtpin sim`: run every launch of an app through the epoch-sharded
/// detailed simulator and print a deterministic digest of the
/// results. The worker count comes from `GTPIN_SIM_THREADS` (falling
/// back to `GTPIN_THREADS`); stdout is bit-identical at every count,
/// which is exactly what the `scripts/check.sh` serial-vs-sharded
/// gate diffs.
fn cmd_sim(args: &[String]) -> CliResult {
    use gtpin_suite::device::detailed::{DetailedConfig, DetailedSimulator};
    use gtpin_suite::device::GpuGeneration;

    let spec = parse_app(args)?;
    // Detailed simulation is the slow path by design; default to the
    // test scale so the gate stays cheap.
    let scale = match flag_value(args, "--scale")? {
        None | Some("test") => Scale::Test,
        Some("default") => Scale::Default,
        Some(other) => return Err(format!("unknown scale {other} (known: test, default)").into()),
    };
    let limit: usize = flag_value(args, "--launches")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(usize::MAX);

    let program = build_program(&spec, scale);
    let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    rt.run(&program, Schedule::Replay)?;
    let gpu = rt.into_device();

    let topo = GpuGeneration::IvyBridgeHd4000.topology();
    let mut sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default());
    // Worker count on stderr only: stdout must diff clean across
    // thread counts.
    eprintln!(
        "sim: {} workers (GTPIN_SIM_THREADS / GTPIN_THREADS)",
        gtpin_suite::par::configured_sim_threads()
    );

    let launches = gpu.launches();
    let n = launches.len().min(limit);
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut busy_cycles = 0u64;
    let mut eu_cycles = 0u64;
    for launch in &launches[..n] {
        let kernel = gpu
            .driver()
            .kernel(launch.kernel.index())
            .ok_or("launch references an unbuilt kernel")?;
        let r = sim.simulate_launch(kernel, &launch.args, launch.global_work_size)?;
        cycles += r.cycles;
        instructions += r.stats.instructions;
        busy_cycles += r.busy_cycles;
        eu_cycles += r.eu_cycles;
        digest = fnv_fold(digest, &r.cycles.to_le_bytes());
        digest = fnv_fold(digest, &r.busy_cycles.to_le_bytes());
        digest = fnv_fold(digest, &r.eu_cycles.to_le_bytes());
        digest = fnv_fold(digest, serde_json::to_string(&r.stats)?.as_bytes());
    }
    println!(
        "{}: {} launch(es) detailed-simulated at {:?} scale",
        spec.name, n, scale
    );
    println!(
        "cycles {cycles}  instructions {instructions}  occupancy {:.4}",
        if eu_cycles == 0 {
            0.0
        } else {
            busy_cycles as f64 / eu_cycles as f64
        }
    );
    println!("stats digest: {digest:016x}");
    // Artifact paths on stderr only: stdout must diff clean across
    // thread counts, and telemetry file names are machine context.
    if gtpin_suite::obs::enabled() {
        for path in gtpin_suite::obs::write_artifacts()? {
            eprintln!("obs: wrote {}", path.display());
        }
    }
    Ok(())
}

/// Positional (non-flag) arguments, skipping the value slot of every
/// flag in `value_flags`.
fn positional_args<'a>(args: &'a [String], value_flags: &[&str]) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        if a.starts_with("--") {
            if value_flags.contains(&a) {
                i += 1;
            }
        } else {
            out.push(a);
        }
        i += 1;
    }
    out
}

fn cmd_explore(args: &[String]) -> CliResult {
    let threshold: f64 = flag_value(args, "--threshold")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(3.0);
    let scale = parse_scale(args)?;
    let (journal_dir, resume) = parse_journal_flags(args)?;

    let specs: Vec<gtpin_suite::workloads::WorkloadSpec> = if args.iter().any(|a| a == "--all") {
        all_specs()
    } else {
        let names = positional_args(args, &["--threshold", "--scale", "--journal", "--resume"]);
        if names.is_empty() {
            return Err("explore needs application names or --all; try `gtpin list`".into());
        }
        names
            .iter()
            .map(|n| {
                spec_by_name(n).ok_or_else(|| format!("unknown application {n}; try `gtpin list`"))
            })
            .collect::<Result<_, _>>()?
    };
    let programs: Vec<_> = specs.iter().map(|s| build_program(s, scale)).collect();

    let opts = SweepOptions {
        threshold_pct: threshold,
        supervisor: SupervisorConfig::from_env(),
        journal_dir,
        resume,
        ..SweepOptions::default()
    };
    let outcome = run_sweep(&programs, &opts)?;

    // The report is the deterministic artifact — stdout only, so a
    // resumed run diffs byte-identical against an uninterrupted one.
    // Volatile run stats (what was replayed vs executed) go to stderr.
    print!("{}", outcome.report.render());
    if resume {
        eprintln!(
            "resume: {} unit(s) replayed from the journal, {} executed fresh",
            outcome.stats.resumed_units, outcome.stats.executed_units
        );
        if let Some(rec) = &outcome.stats.recovery {
            if rec.repaired() {
                eprintln!(
                    "resume: recovery repaired crash damage \
                     ({} torn record(s) truncated, {} orphan tmp(s) swept)",
                    rec.torn_records, rec.orphan_tmps
                );
            }
        }
    }
    if outcome.report.budget_exhausted {
        return Err(GtPinError::Budget(format!(
            "run budget exhausted after {} task(s) / {} virtual ns; \
             partial results above",
            outcome.report.tasks_run, outcome.report.virtual_ns_spent
        )));
    }
    Ok(())
}

fn cmd_disasm(args: &[String]) -> CliResult {
    let spec = parse_app(args)?;
    let index: usize = args.get(1).map(|s| s.parse()).transpose()?.unwrap_or(0);
    let program = build_program(&spec, Scale::Test);
    let mut gpu = Gpu::new(GpuConfig::hd4000());
    use gtpin_suite::runtime::Device;
    gpu.build_program(&program.source)?;
    let kernel = gpu
        .driver()
        .kernel(index)
        .ok_or_else(|| format!("kernel index {index} out of range"))?;
    print!("{}", disassemble_flat(kernel));
    Ok(())
}

fn cmd_lint(args: &[String]) -> CliResult {
    use gtpin_suite::analyze::{lint_kernel, verify_rewrite, LintConfig, Severity};
    use gtpin_suite::device::jit::compile_kernel;
    use gtpin_suite::gtpin::rewriter::rewrite_binary;

    let specs: Vec<gtpin_suite::workloads::WorkloadSpec> =
        if args.first().map(String::as_str) == Some("--all") {
            all_specs()
        } else {
            vec![parse_app(args)?]
        };
    let verify_config = RewriteConfig {
        count_basic_blocks: true,
        time_kernels: true,
        trace_memory: true,
        naive_per_instruction_counters: false,
    };

    let mut all_diags = Vec::new();
    let mut kernels = 0usize;
    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut first_verify_failure: Option<GtPinError> = None;
    for spec in &specs {
        let program = build_program(spec, Scale::Test);
        for ir in &program.source.kernels {
            let kernel = compile_kernel(ir)?;
            kernels += 1;

            let diags = lint_kernel(&kernel, &LintConfig::for_metadata(&kernel.metadata))?;
            for d in &diags {
                match d.severity {
                    Severity::Error => errors += 1,
                    Severity::Warning => warnings += 1,
                }
                println!("{}: {d}", spec.name);
            }
            all_diags.extend(diags);

            // Verifier leg: instrument with every tool enabled and
            // prove the rewrite only touches dead reserved state.
            let bytes = kernel.encode();
            let rw = rewrite_binary(&bytes, &verify_config, 0, 0).map_err(GtPinError::Msg)?;
            match verify_rewrite(&bytes, &rw.bytes) {
                Ok(report) => println!(
                    "{}: verify[ok] {} — {} probes, {} repaired branches",
                    spec.name, kernel.name, report.probes, report.repaired_branches
                ),
                Err(e) => {
                    eprintln!("{}: verify[FAIL] {}: {e}", spec.name, kernel.name);
                    if first_verify_failure.is_none() {
                        first_verify_failure = Some(e.into());
                    }
                }
            }
        }
    }

    println!(
        "\nlint: {} kernel(s) across {} app(s): {} error(s), {} warning(s)",
        kernels,
        specs.len(),
        errors,
        warnings
    );
    if let Some(path) = flag_value(args, "--json")? {
        std::fs::write(path, serde_json::to_string_pretty(&all_diags)?)?;
        println!("diagnostics written to {path}");
    }
    if let Some(e) = first_verify_failure {
        return Err(e);
    }
    if errors > 0 {
        return Err(format!("lint found {errors} error-severity finding(s)").into());
    }
    Ok(())
}

/// `gtpin analyze`: the structural pipeline (dominators, natural
/// loops, value-range trip bounds, static cycle cost) over every
/// kernel of an app or the whole suite. Stdout is deterministic and
/// thread-count invariant; the closing digest line is what the
/// `scripts/check.sh` gate pins.
fn cmd_analyze(args: &[String]) -> CliResult {
    use gtpin_suite::analyze::analyze_kernels;
    use gtpin_suite::device::jit::compile_kernel;
    use gtpin_suite::device::GpuGeneration;

    let specs: Vec<gtpin_suite::workloads::WorkloadSpec> =
        if args.first().map(String::as_str) == Some("--all") {
            all_specs()
        } else {
            vec![parse_app(args)?]
        };
    let params = GpuGeneration::IvyBridgeHd4000.topology().cost_params();
    let threads = gtpin_suite::par::configured_threads();

    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    let mut kernels = 0usize;
    let mut loops = 0usize;
    let mut proven = 0usize;
    let mut json_apps = Vec::new();
    for spec in &specs {
        let program = build_program(spec, Scale::Test);
        let bins: Vec<gtpin_suite::isa::KernelBinary> = program
            .source
            .kernels
            .iter()
            .map(compile_kernel)
            .collect::<Result<_, _>>()?;
        let reports = analyze_kernels(&bins, &params, threads)?;
        println!("== {} ==", spec.name);
        digest = fnv_fold(digest, spec.name.as_bytes());
        for r in &reports {
            print!("{}", r.render());
            digest = fnv_fold(digest, r.render().as_bytes());
            kernels += 1;
            loops += r.loops.len();
            proven += r.loops.iter().filter(|l| !l.trips.starts_with('?')).count();
        }
        if flag_value(args, "--json")?.is_some() {
            use serde::json::Value;
            json_apps.push(Value::Obj(vec![
                ("app".to_string(), Value::Str(spec.name.to_string())),
                (
                    "kernels".to_string(),
                    Value::Arr(reports.iter().map(|r| r.to_json()).collect()),
                ),
            ]));
        }
    }
    println!(
        "\nanalyze: {} kernel(s) across {} app(s): {} loop(s), {} with proven trip bounds",
        kernels,
        specs.len(),
        loops,
        proven
    );
    println!("analysis digest: {digest:016x}");
    if let Some(path) = flag_value(args, "--json")? {
        let mut out = String::new();
        serde::json::render(&serde::json::Value::Arr(json_apps), &mut out);
        std::fs::write(path, out)?;
        println!("reports written to {path}");
    }
    Ok(())
}

fn cmd_obs_report(args: &[String]) -> CliResult {
    use gtpin_suite::obs;
    // Offline mode: summarize an existing binary journal without
    // running anything.
    if let Some(journal) = flag_value(args, "--journal")? {
        let bytes =
            obs::reader::read_journal(std::path::Path::new(journal)).map_err(GtPinError::from)?;
        obs::reader::verify(&bytes).map_err(GtPinError::from)?;
        print!("{}", obs::reader::summarize(&bytes));
        return Ok(());
    }
    // Force telemetry on before anything records, so the report works
    // without the user exporting GTPIN_OBS.
    if !obs::force_enable() {
        return Err("telemetry registry was already initialized disabled".into());
    }
    let name = args
        .first()
        .map(String::as_str)
        .unwrap_or("cb-gaussian-image");
    let spec = spec_by_name(name).ok_or_else(|| format!("unknown application {name}"))?;

    let program = build_program(&spec, Scale::Default);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let approx = gtpin_suite::selection::default_approx_target(&profiled.data);
    let ex = Exploration::run(&profiled.data, approx, &SimpointConfig::default());

    println!(
        "telemetry for {} ({} invocations profiled, {} configurations evaluated)\n",
        spec.name,
        profiled.data.invocations.len(),
        ex.evaluations.len()
    );
    print!("{}", obs::global().summary());
    for path in obs::write_artifacts()? {
        println!("wrote {}", path.display());
    }
    if let Some(journal) = obs::global().journal_path() {
        println!("journal streamed to {}", journal.display());
    }
    Ok(())
}

fn cmd_obs_verify(args: &[String]) -> CliResult {
    use gtpin_suite::obs::{binary, reader};
    let path = args.first().ok_or("obs-verify needs a journal path")?;
    let bytes = std::fs::read(path)?;
    // Sniff the 8-byte magic: GTOBS01 binary journals get the full
    // CRC/version/structure verification, anything else the legacy
    // line-oriented JSONL check.
    if bytes.starts_with(&binary::MAGIC) {
        let report = reader::verify(&bytes).map_err(GtPinError::from)?;
        println!(
            "{path}: GTOBS01 intact — {} stream(s), {} section(s), {} record(s), \
             {} string(s), {} byte(s)",
            report.streams, report.sections, report.records, report.strings, report.bytes
        );
        return Ok(());
    }
    let text = String::from_utf8(bytes).map_err(|e| format!("{path}: not UTF-8: {e}"))?;
    let mut events = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        serde_json::from_str_value(line)
            .map_err(|e| format!("{path}:{}: invalid JSON: {e}", i + 1))?;
        events += 1;
    }
    if events == 0 {
        return Err(format!("{path}: journal is empty").into());
    }
    println!("{path}: {events} well-formed JSONL event(s)");
    Ok(())
}

fn cmd_obs_convert(args: &[String]) -> CliResult {
    use gtpin_suite::obs::reader;
    let positional = positional_args(args, &["--jsonl", "--trace"]);
    let path = *positional
        .first()
        .ok_or("obs-convert needs a binary journal path")?;
    let bytes = reader::read_journal(std::path::Path::new(path)).map_err(GtPinError::from)?;
    reader::verify(&bytes).map_err(GtPinError::from)?;
    let jsonl_out = flag_value(args, "--jsonl")?;
    let trace_out = flag_value(args, "--trace")?;
    if let Some(p) = jsonl_out {
        std::fs::write(p, reader::to_jsonl(&bytes))?;
        eprintln!("wrote {p}");
    }
    if let Some(p) = trace_out {
        std::fs::write(p, reader::to_chrome_trace(&bytes))?;
        eprintln!("wrote {p}");
    }
    if jsonl_out.is_none() && trace_out.is_none() {
        print!("{}", reader::to_jsonl(&bytes));
    }
    Ok(())
}

fn cmd_obs_timeline(args: &[String]) -> CliResult {
    use gtpin_suite::obs::reader;
    let path = args.first().ok_or("obs-timeline needs a journal path")?;
    let bytes = reader::read_journal(std::path::Path::new(path)).map_err(GtPinError::from)?;
    reader::verify(&bytes).map_err(GtPinError::from)?;
    let t = reader::timeline(&bytes);
    // Virtual-cycle report on stdout: byte-identical at every
    // GTPIN_SIM_THREADS setting. Wall-clock barrier stats are host
    // context, so they go to stderr.
    print!("{}", reader::render_timeline(&t));
    if t.barrier.waits > 0 {
        eprintln!(
            "barrier: {} wait(s) across {} worker(s), total {} ns, max {} ns",
            t.barrier.waits, t.barrier.workers, t.barrier.total_ns, t.barrier.max_ns
        );
    }
    Ok(())
}

fn cmd_luxmark() -> CliResult {
    let ivy = luxmark_score(GpuConfig::hd4000());
    let hsw = luxmark_score(GpuConfig::hd4600());
    println!("HD4000 (Ivy Bridge): {ivy:.0}   (paper: 269)");
    println!("HD4600 (Haswell):    {hsw:.0}   (paper: 351)");
    Ok(())
}

fn cmd_serve(args: &[String]) -> CliResult {
    use gtpin_suite::serve::ServeConfig;
    let socket = flag_value(args, "--socket")?
        .map(PathBuf::from)
        .unwrap_or_else(gtpin_suite::serve::default_socket);
    let (journal_dir, resume) = parse_journal_flags(args)?;
    let max_sessions: usize = flag_value(args, "--max-sessions")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(8);
    gtpin_suite::serve::serve(ServeConfig {
        socket,
        journal_dir,
        resume,
        max_sessions,
        supervisor: SupervisorConfig::from_env(),
        threads: gtpin_suite::par::configured_threads(),
        // Lease length (GTPIN_LEASE_MS) comes from the default.
        ..ServeConfig::default()
    })?;
    Ok(())
}

fn cmd_request(args: &[String]) -> CliResult {
    use gtpin_suite::serve::wire::{Request, Response};
    let kind = args
        .first()
        .map(String::as_str)
        .ok_or("request needs a kind: profile, explore, sim, lint, or analyze")?;
    let rest = &args[1..];
    let socket = flag_value(rest, "--socket")?
        .map(PathBuf::from)
        .unwrap_or_else(gtpin_suite::serve::default_socket);
    let positional = positional_args(rest, &["--socket", "--scale", "--threshold", "--launches"]);
    let app = positional
        .first()
        .ok_or("request needs an application name; try `gtpin list`")?
        .to_string();
    // App and scale strings are validated daemon-side, where the
    // typed error comes back as an in-band error[...] response.
    let scale = flag_value(rest, "--scale")?
        .unwrap_or("default")
        .to_string();
    let request = match kind {
        "profile" => Request::Profile { app, scale },
        "explore" => Request::Explore {
            app,
            scale,
            threshold_pct: flag_value(rest, "--threshold")?
                .map(str::parse)
                .transpose()?
                .unwrap_or(3.0),
        },
        "sim" => Request::Sim {
            app,
            launches: flag_value(rest, "--launches")?
                .map(str::parse)
                .transpose()?
                .unwrap_or(0),
        },
        "lint" => Request::Lint { app },
        "analyze" => Request::Analyze { app },
        other => {
            return Err(format!(
                "unknown request kind {other} (known: profile, explore, sim, lint, analyze)"
            )
            .into())
        }
    };

    // Transient failures (dead socket, torn frame, busy shed) retry
    // behind deterministic seeded jittered backoff; terminal typed
    // errors come back on the first attempt they are observed.
    let policy = gtpin_suite::serve::RetryPolicy::from_env();
    let responses = gtpin_suite::serve::request_with_retry(&socket, &request, &policy)?;
    for response in responses {
        match response {
            Response::Chunk { text } => print!("{text}"),
            Response::Done => return Ok(()),
            Response::Err { kind, message } => {
                return Err(GtPinError::Remote { kind, message });
            }
        }
    }
    Err("connection closed before a terminal response".into())
}

/// One deterministic trial of the suite under a fault plan: every app
/// profiled with full instrumentation, outcomes digested.
struct MatrixRun {
    /// FNV digest over per-app profile JSON (or error string).
    digest: u64,
    /// Drained fault accounting for the trial.
    accounting: Vec<(String, u64)>,
    /// Apps that completed / failed with a typed error.
    completed: usize,
    failed: usize,
    /// Degradation totals observed across all launches.
    early_drains: u64,
    dropped: u64,
    quarantined: u64,
}

fn fnv_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn matrix_run(
    apps: &[gtpin_suite::workloads::WorkloadSpec],
    plan: Option<&faults::FaultPlan>,
) -> MatrixRun {
    match plan {
        Some(p) => faults::install(p.clone()),
        None => faults::disable(),
    }
    let mut run = MatrixRun {
        digest: 0xcbf2_9ce4_8422_2325,
        accounting: Vec::new(),
        completed: 0,
        failed: 0,
        early_drains: 0,
        dropped: 0,
        quarantined: 0,
    };
    for spec in apps {
        let program = build_program(spec, Scale::Test);
        let mut config = GpuConfig::hd4000();
        // Force the parallel executor path so the shard-overflow and
        // worker-panic seams are actually exercised.
        config.exec.threads = 4;
        let mut gpu = Gpu::new(config);
        let gtpin = GtPin::new(RewriteConfig {
            count_basic_blocks: true,
            time_kernels: true,
            trace_memory: true,
            naive_per_instruction_counters: false,
        });
        gtpin.attach(&mut gpu);
        let mut rt = OclRuntime::new(gpu);
        match rt.run(&program, Schedule::Replay) {
            Ok(_) => {
                run.completed += 1;
                let profile = gtpin.profile(spec.name);
                for inv in &profile.invocations {
                    run.dropped += inv.dropped_records;
                    run.quarantined += inv.quarantined_records;
                }
                let json = serde_json::to_string(&profile)
                    .unwrap_or_else(|e| format!("unserializable profile: {e}"));
                run.digest = fnv_fold(run.digest, json.as_bytes());
                let device = rt.into_device();
                run.early_drains += device
                    .launches()
                    .iter()
                    .map(|l| l.stats.trace_early_drains)
                    .sum::<u64>();
            }
            Err(e) => {
                run.failed += 1;
                run.digest = fnv_fold(run.digest, e.to_string().as_bytes());
            }
        }
    }
    run.accounting = faults::take_accounting();
    faults::disable();
    run
}

/// One kill-and-resume trial of a journaled mini-sweep under `plan`:
/// each injected `journal.crash` "kills the process" (`run_sweep`
/// returns `InjectedCrash` and all in-flight work is lost), the loop
/// resumes from the journal until the sweep completes, and the final
/// report is digested for the identity contracts.
struct JournalMatrixRun {
    /// FNV digest over the final report JSON.
    digest: u64,
    /// Drained fault accounting for the whole trial.
    accounting: Vec<(String, u64)>,
    /// Simulated process deaths survived.
    crashes: u64,
    /// Records the final resume recovered from the journal.
    recovered_records: usize,
}

fn matrix_journal_run(
    apps: &[gtpin_suite::workloads::WorkloadSpec],
    plan: Option<&faults::FaultPlan>,
    dir: &std::path::Path,
) -> Result<JournalMatrixRun, GtPinError> {
    match plan {
        Some(p) => faults::install(p.clone()),
        None => faults::disable(),
    }
    let _ = std::fs::remove_dir_all(dir);
    let programs: Vec<_> = apps.iter().map(|s| build_program(s, Scale::Test)).collect();
    let mut opts = SweepOptions {
        journal_dir: Some(dir.to_path_buf()),
        threads: 2,
        ..SweepOptions::default()
    };
    let mut crashes = 0u64;
    let outcome = loop {
        match run_sweep(&programs, &opts) {
            Ok(out) => break out,
            Err(JournalError::InjectedCrash { .. }) => {
                crashes += 1;
                opts.resume = true;
                if crashes > 10_000 {
                    faults::disable();
                    return Err("journal-crash scenario failed to converge".into());
                }
            }
            Err(e) => {
                faults::disable();
                return Err(e.into());
            }
        }
    };
    let json = serde_json::to_string(&outcome.report)?;
    let accounting = faults::take_accounting();
    faults::disable();
    let _ = std::fs::remove_dir_all(dir);
    Ok(JournalMatrixRun {
        digest: fnv_fold(0xcbf2_9ce4_8422_2325, json.as_bytes()),
        accounting,
        crashes,
        recovered_records: outcome
            .stats
            .recovery
            .as_ref()
            .map_or(0, |r| r.records.len()),
    })
}

/// Detailed-simulate a few launches of one app at 4 workers under the
/// given plan (or with faults disabled), returning the stats digest
/// and the drained fault accounting.
fn matrix_sim_run(
    plan: Option<&faults::FaultPlan>,
) -> Result<(u64, Vec<(String, u64)>), GtPinError> {
    use gtpin_suite::device::detailed::{DetailedConfig, DetailedSimulator};
    use gtpin_suite::device::GpuGeneration;

    match plan {
        Some(p) => faults::install(p.clone()),
        None => faults::disable(),
    }
    let spec = all_specs().into_iter().next().ok_or("no workloads")?;
    let program = build_program(&spec, Scale::Test);
    let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    rt.run(&program, Schedule::Replay)?;
    let gpu = rt.into_device();
    let mut sim = DetailedSimulator::new(
        GpuGeneration::IvyBridgeHd4000.topology(),
        1.15e9,
        DetailedConfig::default(),
    )
    .with_workers(4);
    let launches = gpu.launches();
    let mut digest = 0xCBF2_9CE4_8422_2325u64;
    for launch in launches.iter().take(6) {
        let kernel = gpu
            .driver()
            .kernel(launch.kernel.index())
            .ok_or("launch references an unbuilt kernel")?;
        let r = sim.simulate_launch(kernel, &launch.args, launch.global_work_size)?;
        digest = fnv_fold(digest, &r.cycles.to_le_bytes());
        digest = fnv_fold(digest, serde_json::to_string(&r.stats)?.as_bytes());
    }
    let accounting = faults::take_accounting();
    faults::disable();
    Ok((digest, accounting))
}

/// One deterministic trial of the serve engine under a fault plan: a
/// fixed request list handled sequentially, every response delivered
/// into a byte sink through the `serve.conn_drop` seam.
struct ServeMatrixRun {
    /// FNV digest over the engine's cached terminal results.
    digest: u64,
    /// Drained fault accounting for the trial.
    accounting: Vec<(String, u64)>,
    /// Sessions handled / completed / failed-with-typed-error.
    sessions: usize,
    done: usize,
    failed: usize,
    /// Deliveries abandoned by the conn-drop seam.
    dropped_deliveries: usize,
}

fn matrix_serve_run(
    apps: &[gtpin_suite::workloads::WorkloadSpec],
    plan: Option<&faults::FaultPlan>,
    deep: bool,
) -> Result<ServeMatrixRun, GtPinError> {
    use gtpin_suite::serve::wire::Request;
    use gtpin_suite::serve::{ServeConfig, SessionEngine};

    match plan {
        Some(p) => faults::install(p.clone()),
        None => faults::disable(),
    }
    let (engine, _) = SessionEngine::new(ServeConfig {
        threads: 2,
        ..ServeConfig::default()
    })?;
    let mut requests = Vec::new();
    if deep {
        // The deep request list routes through every sealed cache:
        // Profile seals a memo, Explore re-reads it and seals the
        // per-configuration interval tables, Analyze seals the
        // per-kernel analyses. Distinct session keys throughout, so
        // the response cache never short-circuits the sealed reads.
        let app = apps[0].name.to_string();
        requests.push(Request::Profile {
            app: app.clone(),
            scale: "test".to_string(),
        });
        requests.push(Request::Explore {
            app: app.clone(),
            scale: "test".to_string(),
            threshold_pct: 5.0,
        });
        requests.push(Request::Analyze { app });
    } else {
        for spec in apps {
            requests.push(Request::Sim {
                app: spec.name.to_string(),
                launches: 2,
            });
            requests.push(Request::Lint {
                app: spec.name.to_string(),
            });
        }
    }

    let mut run = ServeMatrixRun {
        digest: 0,
        accounting: Vec::new(),
        sessions: requests.len(),
        done: 0,
        failed: 0,
        dropped_deliveries: 0,
    };
    for request in &requests {
        let key = request.session_key();
        let result = engine.handle(request);
        if result.is_err() {
            run.failed += 1;
        } else {
            run.done += 1;
        }
        let mut sink = Vec::new();
        match engine.deliver(&key, &result, &mut sink) {
            Ok(true) => {}
            Ok(false) => run.dropped_deliveries += 1,
            Err(e) => {
                faults::disable();
                return Err(GtPinError::Serve(e.into()));
            }
        }
    }
    run.digest = engine.response_digest();
    run.accounting = faults::take_accounting();
    faults::disable();
    Ok(run)
}

/// What a lease-expiry matrix run yields: the resumed engine's
/// response digest, the fault accounting, and the reaped count.
type LeaseRunOutcome = (u64, Vec<(String, u64)>, usize);

/// Lease-expiry scenario: journal one completed session (advancing
/// the virtual clock), hand-append a Start+Lease pair with an
/// already-expired deadline — exactly what a SIGKILL'd worker leaves
/// behind — then resume. The reaper must reclaim the orphan into a
/// durable `error[lease]`. Returns (digest, accounting, reaped).
fn matrix_lease_run(
    apps: &[gtpin_suite::workloads::WorkloadSpec],
    seed: u64,
    tag: &str,
) -> Result<LeaseRunOutcome, GtPinError> {
    use gtpin_suite::serve::wire::Request;
    use gtpin_suite::serve::{ServeConfig, SessionEngine, SessionRecord};

    let dir = std::env::temp_dir().join(format!(
        "gtpin-faults-matrix-lease-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    faults::disable();

    let app = apps[0].name.to_string();
    let stuck = Request::Lint { app: app.clone() };
    // One completed session advances the virtual clock well past the
    // tiny lease deadline appended below.
    {
        let (engine, _) = SessionEngine::new(ServeConfig {
            journal_dir: Some(dir.clone()),
            threads: 2,
            ..ServeConfig::default()
        })?;
        let done = engine.handle(&Request::Sim {
            app: app.clone(),
            launches: 1,
        });
        if done.is_err() {
            return Err("lease-expiry: clock-advancing session failed".into());
        }
    }
    // The SIGKILL'd session: Start + Lease in the journal, no Finish.
    {
        let (mut journal, _) = Journal::recover(&dir)?;
        let start = SessionRecord::Start {
            key: stuck.session_key(),
            request: stuck.clone(),
        };
        journal.append(serde_json::to_string(&start)?.as_bytes())?;
        let lease = SessionRecord::Lease {
            key: stuck.session_key(),
            app,
            deadline_virtual_ns: 1,
        };
        journal.append(serde_json::to_string(&lease)?.as_bytes())?;
    }

    // Resume with the registry armed-but-quiescent so the reaper's
    // `recovered.lease_reaped` accounting registers.
    faults::install(faults::FaultPlan::quiescent(seed));
    let (resumed, report) = SessionEngine::new(ServeConfig {
        journal_dir: Some(dir.clone()),
        resume: true,
        threads: 2,
        ..ServeConfig::default()
    })?;
    let mut digest = resumed.response_digest();
    digest = fnv_fold(
        digest,
        format!("{:?}", resumed.supervisor_report()).as_bytes(),
    );
    digest = fnv_fold(digest, &(report.reaped as u64).to_le_bytes());
    let accounting = faults::take_accounting();
    faults::disable();
    let _ = std::fs::remove_dir_all(&dir);
    Ok((digest, accounting, report.reaped))
}

fn cmd_faults_matrix(args: &[String]) -> CliResult {
    let seed: u64 = flag_value(args, "--seed")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(faults::DEFAULT_SEED);
    let apps: Vec<gtpin_suite::workloads::WorkloadSpec> = all_specs().into_iter().take(3).collect();
    let names: Vec<&str> = apps.iter().map(|s| s.name).collect();
    println!("faults-matrix: seed {seed:#x}, apps {names:?}, each scenario run twice\n");

    use faults::{site, FaultPlan};
    let scenarios: Vec<(&str, Option<FaultPlan>)> = vec![
        ("baseline", None),
        ("zero-rate", Some(FaultPlan::quiescent(seed))),
        (
            "shard-overflow",
            Some(FaultPlan::single(site::SHARD_OVERFLOW, 1.0, seed)),
        ),
        (
            "record-corrupt",
            Some(FaultPlan::single(site::RECORD_CORRUPT, 0.05, seed)),
        ),
        (
            "jit-fail",
            Some(FaultPlan::single(site::JIT_FAIL, 0.4, seed)),
        ),
        (
            "launch-hang",
            Some(FaultPlan::single(site::LAUNCH_HANG, 0.3, seed)),
        ),
        (
            "worker-panic",
            Some(FaultPlan::single(site::WORKER_PANIC, 0.5, seed)),
        ),
        ("all", Some(FaultPlan::uniform(0.2, seed))),
    ];

    let mut violations: Vec<String> = Vec::new();
    let mut baseline_digest = None;
    println!(
        "{:15} {:>4} {:>4} {:>7} {:>7} {:>7} {:>9}  contract",
        "scenario", "ok", "err", "drains", "dropped", "quar", "injected"
    );
    for (name, plan) in &scenarios {
        let first = matrix_run(&apps, plan.as_ref());
        let second = matrix_run(&apps, plan.as_ref());

        if first.digest != second.digest || first.accounting != second.accounting {
            violations.push(format!(
                "{name}: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.digest, second.digest
            ));
        }
        let injected: u64 = first
            .accounting
            .iter()
            .filter(|(k, _)| k.starts_with("injected."))
            .map(|(_, v)| v)
            .sum();
        let mut notes: Vec<&str> = vec!["replayed"];
        match *name {
            "baseline" => {
                baseline_digest = Some(first.digest);
            }
            // Scenarios whose recovery is lossless must be
            // indistinguishable from the no-fault profile.
            "zero-rate" | "shard-overflow" | "worker-panic" => {
                if baseline_digest != Some(first.digest) {
                    violations.push(format!("{name}: profile digest diverged from baseline"));
                } else {
                    notes.push("baseline-identical");
                }
                if *name == "shard-overflow" && first.early_drains == 0 {
                    violations.push("shard-overflow: no early drains recorded".into());
                }
                if *name != "zero-rate" && injected == 0 {
                    violations.push(format!("{name}: no faults fired at its configured rate"));
                }
            }
            "record-corrupt" => {
                if injected > 0 && first.quarantined == 0 {
                    violations.push(
                        "record-corrupt: corrupt records injected but none quarantined".into(),
                    );
                } else {
                    notes.push("quarantined");
                }
            }
            // Degraded-but-accounted: every app must either complete
            // or fail with a typed error; nothing may panic (a panic
            // would have aborted this process).
            "jit-fail" | "launch-hang" | "all" => {
                if first.completed + first.failed != apps.len() {
                    violations.push(format!("{name}: some apps neither completed nor failed"));
                } else {
                    notes.push("all-accounted");
                }
                if injected == 0 {
                    violations.push(format!("{name}: no faults fired at its configured rate"));
                }
            }
            _ => {}
        }
        println!(
            "{:15} {:>4} {:>4} {:>7} {:>7} {:>7} {:>9}  {}",
            name,
            first.completed,
            first.failed,
            first.early_drains,
            first.dropped,
            first.quarantined,
            injected,
            notes.join(", ")
        );
    }

    // Journal kill-and-resume scenarios: the sweep is repeatedly
    // "killed" at injected crash points, resumed from the journal,
    // and the final report must come out bit-identical to the
    // uninterrupted baseline — torn tails truncated, never parsed.
    let journal_apps: Vec<gtpin_suite::workloads::WorkloadSpec> =
        all_specs().into_iter().take(2).collect();
    let journal_scenarios: Vec<(&str, FaultPlan)> = vec![
        (
            "journal-crash",
            FaultPlan::single(site::JOURNAL_CRASH, 0.3, seed),
        ),
        (
            "journal-crash-heavy",
            FaultPlan::single(site::JOURNAL_CRASH, 0.7, seed),
        ),
    ];
    let dir = std::env::temp_dir().join(format!(
        "gtpin-faults-matrix-journal-{}",
        std::process::id()
    ));
    let journal_baseline = matrix_journal_run(&journal_apps, None, &dir)?;
    println!(
        "\n{:21} {:>7} {:>7} {:>9}  contract",
        "journal scenario", "crashes", "records", "injected"
    );
    for (name, plan) in &journal_scenarios {
        let first = matrix_journal_run(&journal_apps, Some(plan), &dir)?;
        let second = matrix_journal_run(&journal_apps, Some(plan), &dir)?;
        let mut notes: Vec<&str> = vec!["replayed"];
        if first.digest != second.digest || first.accounting != second.accounting {
            violations.push(format!(
                "{name}: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.digest, second.digest
            ));
        }
        if first.digest != journal_baseline.digest {
            violations.push(format!(
                "{name}: resumed report diverged from the uninterrupted baseline"
            ));
        } else {
            notes.push("baseline-identical");
        }
        let injected: u64 = first
            .accounting
            .iter()
            .filter(|(k, _)| k.starts_with("injected."))
            .map(|(_, v)| v)
            .sum();
        if first.crashes == 0 || injected == 0 {
            violations.push(format!(
                "{name}: no journal crashes fired at its configured rate"
            ));
        } else {
            notes.push("resumed");
        }
        println!(
            "{:21} {:>7} {:>7} {:>9}  {}",
            name,
            first.crashes,
            first.recovered_records,
            injected,
            notes.join(", ")
        );
    }

    // Sim-shard scenario: kill every parallel epoch of a 4-worker
    // detailed simulation; the serial fallback must reproduce the
    // no-fault digest exactly, and every fallback must be accounted.
    println!(
        "\n{:21} {:>9} {:>9}  contract",
        "sim scenario", "injected", "fallbacks"
    );
    {
        let baseline = matrix_sim_run(None)?;
        let plan = FaultPlan::single(site::SIM_SHARD, 1.0, seed);
        let first = matrix_sim_run(Some(&plan))?;
        let second = matrix_sim_run(Some(&plan))?;
        let mut notes: Vec<&str> = vec!["replayed"];
        if first.0 != second.0 || first.1 != second.1 {
            violations.push(format!(
                "sim-shard: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.0, second.0
            ));
        }
        if first.0 != baseline.0 {
            violations.push("sim-shard: degraded digest diverged from baseline".into());
        } else {
            notes.push("baseline-identical");
        }
        let injected: u64 = first
            .1
            .iter()
            .filter(|(k, _)| k.starts_with("injected."))
            .map(|(_, v)| v)
            .sum();
        let fallbacks = first
            .1
            .iter()
            .find(|(k, _)| k.as_str() == "recovered.sim_serial_fallback")
            .map_or(0, |(_, v)| *v);
        if injected == 0 || fallbacks == 0 {
            violations.push("sim-shard: no shard deaths fired at rate 1.0".into());
        } else {
            notes.push("serial-fallback");
        }
        println!(
            "{:21} {:>9} {:>9}  {}",
            "sim-shard",
            injected,
            fallbacks,
            notes.join(", ")
        );
    }

    // Serve scenarios: a fixed request list handled sequentially
    // through one session engine, each response then delivered into
    // a byte sink through the conn-drop seam. Crashed handlers must
    // be isolated to typed error[session] results; dropped
    // connections must not perturb the computed responses at all.
    println!(
        "\n{:21} {:>4} {:>4} {:>9} {:>9}  contract",
        "serve scenario", "ok", "err", "injected", "recovered"
    );
    let serve_baseline = matrix_serve_run(&apps, None, false)?;
    // Zero-rate equivalence: armed-but-quiescent serve seams run
    // their check paths yet must reproduce the disabled baseline.
    let serve_quiescent = matrix_serve_run(&apps, Some(&FaultPlan::quiescent(seed)), false)?;
    if serve_quiescent.digest != serve_baseline.digest {
        violations.push(
            "serve zero-rate: armed-but-quiescent responses diverged from disabled baseline"
                .to_string(),
        );
    }
    let serve_scenarios: Vec<(&str, FaultPlan)> = vec![
        (
            "serve-session-crash",
            FaultPlan::single(site::SERVE_SESSION_CRASH, 0.5, seed),
        ),
        (
            "serve-conn-drop",
            FaultPlan::single(site::SERVE_CONN_DROP, 0.5, seed),
        ),
    ];
    for (name, plan) in &serve_scenarios {
        let first = matrix_serve_run(&apps, Some(plan), false)?;
        let second = matrix_serve_run(&apps, Some(plan), false)?;
        let mut notes: Vec<&str> = vec!["replayed"];
        if first.digest != second.digest || first.accounting != second.accounting {
            violations.push(format!(
                "{name}: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.digest, second.digest
            ));
        }
        let injected: u64 = first
            .accounting
            .iter()
            .filter(|(k, _)| k.starts_with("injected."))
            .map(|(_, v)| v)
            .sum();
        let recovered: u64 = first
            .accounting
            .iter()
            .filter(|(k, _)| k.starts_with("recovered.serve_"))
            .map(|(_, v)| v)
            .sum();
        if injected == 0 || recovered == 0 {
            violations.push(format!("{name}: no faults fired at its configured rate"));
        }
        match *name {
            "serve-session-crash" => {
                // Every request reaches exactly one terminal result:
                // crashed handlers demote to error[session], nothing
                // hangs, nothing takes a sibling session down.
                if first.done + first.failed != first.sessions {
                    violations.push(format!("{name}: some sessions never reached a terminal"));
                } else {
                    notes.push("all-accounted");
                }
                if first.failed == 0 {
                    violations.push(format!("{name}: crashes fired but nothing was isolated"));
                }
            }
            "serve-conn-drop" => {
                // Drops are delivery-only: the computed responses are
                // bit-identical to the no-fault baseline.
                if first.digest != serve_baseline.digest {
                    violations.push(format!(
                        "{name}: computed responses diverged from the no-fault baseline"
                    ));
                } else {
                    notes.push("baseline-identical");
                }
                if first.dropped_deliveries == 0 {
                    violations.push(format!("{name}: no deliveries dropped at rate 0.5"));
                }
            }
            _ => {}
        }
        println!(
            "{:21} {:>4} {:>4} {:>9} {:>9}  {}",
            name,
            first.done,
            first.failed,
            injected,
            recovered,
            notes.join(", ")
        );
    }

    // Self-healing scenarios: verify-on-read sealed caches under
    // forced corruption, and the lease reaper reclaiming a
    // SIGKILL'd session on resume.
    println!(
        "\n{:21} {:>9} {:>9}  contract",
        "healing scenario", "injected", "healed"
    );
    {
        // cache-corrupt: every sealed-cache read is corrupted in
        // memory; verify-on-read must quarantine the bad entry,
        // recompute, and come out bitwise identical to the no-fault
        // deep baseline — corruption heals, it never propagates.
        let deep_baseline = matrix_serve_run(&apps, None, true)?;
        let plan = FaultPlan::single(site::CACHE_CORRUPT, 1.0, seed);
        let first = matrix_serve_run(&apps, Some(&plan), true)?;
        let second = matrix_serve_run(&apps, Some(&plan), true)?;
        let mut notes: Vec<&str> = vec!["replayed"];
        if first.digest != second.digest || first.accounting != second.accounting {
            violations.push(format!(
                "cache-corrupt: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.digest, second.digest
            ));
        }
        if first.digest != deep_baseline.digest {
            violations
                .push("cache-corrupt: healed responses diverged from the no-fault baseline".into());
        } else {
            notes.push("baseline-identical");
        }
        let injected: u64 = first
            .accounting
            .iter()
            .filter(|(k, _)| k.starts_with("injected."))
            .map(|(_, v)| v)
            .sum();
        let healed = first
            .accounting
            .iter()
            .find(|(k, _)| k.as_str() == "recovered.cache_heal")
            .map_or(0, |(_, v)| *v);
        let heals_profile = first
            .accounting
            .iter()
            .any(|(k, v)| k.as_str() == "healed.serve.profile" && *v >= 1);
        let heals_tables = first
            .accounting
            .iter()
            .any(|(k, v)| k.as_str() == "healed.selection.interval_table" && *v >= 1);
        if injected == 0 || healed == 0 {
            violations.push("cache-corrupt: no corruptions healed at rate 1.0".into());
        } else if !heals_profile || !heals_tables {
            violations.push(
                "cache-corrupt: healing missed a cache layer (memo or interval tables)".into(),
            );
        } else {
            notes.push("healed");
        }
        println!(
            "{:21} {:>9} {:>9}  {}",
            "cache-corrupt",
            injected,
            healed,
            notes.join(", ")
        );
    }
    {
        // lease-expiry: a session journaled Start+Lease but never
        // Finish (a SIGKILL'd worker); resume must reap it into a
        // durable error[lease] — deterministically.
        let first = matrix_lease_run(&apps, seed, "a")?;
        let second = matrix_lease_run(&apps, seed, "b")?;
        let mut notes: Vec<&str> = vec!["replayed"];
        if first.0 != second.0 || first.1 != second.1 {
            violations.push(format!(
                "lease-expiry: two identically-seeded trials disagree \
                 (digest {:#x} vs {:#x})",
                first.0, second.0
            ));
        }
        let reaped = first
            .1
            .iter()
            .find(|(k, _)| k.as_str() == "recovered.lease_reaped")
            .map_or(0, |(_, v)| *v);
        if first.2 != 1 || reaped == 0 {
            violations.push("lease-expiry: the expired lease was not reaped on resume".into());
        } else {
            notes.push("reaped-into-error[lease]");
        }
        println!(
            "{:21} {:>9} {:>9}  {}",
            "lease-expiry",
            first.2,
            reaped,
            notes.join(", ")
        );
    }

    if violations.is_empty() {
        println!(
            "\nfaults-matrix: all {} scenarios honored the degradation contract",
            scenarios.len() + journal_scenarios.len() + 1 + serve_scenarios.len() + 2
        );
        Ok(())
    } else {
        for v in &violations {
            eprintln!("violation: {v}");
        }
        Err(format!("faults-matrix: {} contract violation(s)", violations.len()).into())
    }
}

fn cmd_chaos(args: &[String]) -> CliResult {
    use gtpin_suite::chaos::{run_chaos, self_test, ChaosConfig};

    if args.iter().any(|a| a == "--self-test") {
        let (line, ok) = self_test();
        println!("{line}");
        if ok {
            return Ok(());
        }
        return Err("chaos --self-test: shrinking did not reach a single site".into());
    }

    let defaults = ChaosConfig::default();
    let seeds: u64 = flag_value(args, "--seeds")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(defaults.seeds);
    let seed_base: u64 = flag_value(args, "--seed-base")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(defaults.seed_base);
    let max_restarts: u64 = flag_value(args, "--max-restarts")?
        .map(str::parse)
        .transpose()?
        .unwrap_or(defaults.max_restarts);
    let (journal_dir, resume) = parse_journal_flags(args)?;
    let report = run_chaos(&ChaosConfig {
        seeds,
        seed_base,
        journal_dir,
        resume,
        max_restarts,
        ..defaults
    })?;
    print!("{}", report.render());
    if report.failures() == 0 {
        Ok(())
    } else {
        Err(format!("chaos: {} scenario(s) failed", report.failures()).into())
    }
}
