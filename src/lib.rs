//! # gtpin-suite
//!
//! Facade crate for the GT-Pin reproduction. Re-exports every
//! workspace crate under one roof so examples and integration tests
//! can `use gtpin_suite::...`.
//!
//! See the individual crates for the real APIs:
//!
//! * [`isa`] — the GEN-flavoured GPU instruction set,
//! * [`runtime`] — the OpenCL host/runtime model and CoFluent tracer,
//! * [`device`] — the GPU device model (JIT, executor, timing,
//!   detailed simulator),
//! * [`gtpin`] — the GT-Pin binary instrumentation engine and tools,
//! * [`analyze`] — CFG dataflow analyses, kernel lints, and the
//!   instrumentation-safety verifier (the `GTPIN_VERIFY` gate),
//! * [`obs`] — the `GTPIN_OBS` telemetry registry and exporters,
//! * [`faults`] — the `GTPIN_FAULTS` deterministic fault-injection
//!   registry,
//! * [`durable`] — the crash-consistent write-ahead run journal
//!   behind `gtpin explore --resume`,
//! * [`serve`] — the `gtpin serve` profiling daemon: Unix-socket
//!   protocol, admission control, journaled sessions with resume,
//! * [`chaos`] — the seeded end-to-end chaos harness behind
//!   `gtpin chaos` (scenario generation, kill/resume schedules,
//!   invariant oracles, shrinking),
//! * [`simpoint`] — SimPoint-style clustering,
//! * [`selection`] — simulation subset selection,
//! * [`workloads`] — the 25 benchmark applications.
//!
//! [`GtPinError`] unifies every layer's typed error behind one enum.

pub mod error;

pub use error::GtPinError;
pub use gen_isa as isa;
pub use gpu_device as device;
pub use gtpin_analyze as analyze;
pub use gtpin_chaos as chaos;
pub use gtpin_core as gtpin;
pub use gtpin_durable as durable;
pub use gtpin_faults as faults;
pub use gtpin_obs as obs;
pub use gtpin_par as par;
pub use gtpin_serve as serve;
pub use ocl_runtime as runtime;
pub use simpoint;
pub use subset_select as selection;
pub use workloads;
