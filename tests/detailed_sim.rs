//! The detailed simulator against the analytic model, and the
//! paper's core promise: selected subsets predict full detailed
//! simulation at a fraction of the simulated instructions.

use gtpin_suite::device::detailed::{DetailedConfig, DetailedSimulator};
use gtpin_suite::device::{Gpu, GpuConfig, GpuGeneration};
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::selection::{profile_app, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn simulate_range(
    gpu: &Gpu,
    sim: &mut DetailedSimulator,
    range: std::ops::Range<usize>,
) -> (u64, u64) {
    let mut cycles = 0u64;
    let mut instrs = 0u64;
    for launch in &gpu.launches()[range] {
        let kernel = gpu.driver().kernel(launch.kernel.index()).expect("built");
        let r = sim
            .simulate_launch(kernel, &launch.args, launch.global_work_size)
            .expect("simulates");
        cycles += r.cycles;
        instrs += r.stats.instructions;
    }
    (cycles, instrs)
}

#[test]
fn subset_predicts_full_detailed_simulation() {
    let spec = spec_by_name("cb-gaussian-buffer").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");
    let data = &profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(data);
    let ex = Exploration::run(data, approx, &SimpointConfig::default());
    let best = ex.min_error().expect("evaluations exist");

    // Launch descriptors + binaries for the simulator.
    let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    rt.run(&program, Schedule::Replay).expect("runs");
    let gpu = rt.into_device();

    let topo = GpuGeneration::IvyBridgeHd4000.topology();
    let mut full_sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default());
    let (full_cycles, full_instrs) = simulate_range(&gpu, &mut full_sim, 0..data.invocations.len());

    // Each sample starts from a PinPlay-style checkpoint (warm cache
    // captured by one cheap functional replay).
    let kernels: Vec<_> = (0..program.source.kernels.len())
        .map(|i| gpu.driver().kernel(i).expect("built").clone())
        .collect();
    let descriptors: Vec<gpu_device::LaunchDescriptor> = gpu
        .launches()
        .iter()
        .map(|l| gpu_device::LaunchDescriptor {
            kernel_index: l.kernel.index(),
            args: l.args.clone(),
            global_work_size: l.global_work_size,
        })
        .collect();
    let boundaries: Vec<usize> = best
        .selection
        .picks
        .iter()
        .map(|p| best.intervals[p.interval].start)
        .collect();
    let checkpoints = gpu_device::CheckpointLibrary::build(
        &kernels,
        &descriptors,
        gpu_device::CacheConfig::llc_slice(topo.llc_slice_kib),
        &boundaries,
    )
    .expect("checkpoints build");

    let mut projected_cpi = 0.0;
    let mut subset_instrs = 0u64;
    for pick in &best.selection.picks {
        let iv = best.intervals[pick.interval];
        let mut sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default());
        if let Some(cache) = checkpoints.cache_before(iv.start) {
            sim.restore_cache(cache.clone());
        }
        let (cycles, instrs) = simulate_range(&gpu, &mut sim, iv.start..iv.end);
        subset_instrs += instrs;
        projected_cpi += pick.ratio * cycles as f64 / instrs.max(1) as f64;
    }
    let projected = projected_cpi * full_instrs as f64;
    let error = (projected - full_cycles as f64).abs() / full_cycles as f64 * 100.0;
    assert!(
        error < 25.0,
        "subset-projected cycles within 25% of full detailed simulation, got {error:.1}%"
    );
    assert!(
        subset_instrs <= full_instrs,
        "the subset is never larger than the program"
    );
}

#[test]
fn detailed_and_analytic_models_agree_on_ordering() {
    // Whatever the absolute numbers, a compute-light kernel must be
    // faster than a compute-heavy one in BOTH models.
    use gen_isa::ExecSize;
    use ocl_runtime::api::ArgValue;
    use ocl_runtime::ir::{IrOp, KernelIr, TripCount};

    let mk = |ops: u16| {
        let mut ir = KernelIr::new("k", 1);
        ir.body = vec![
            IrOp::LoopBegin {
                trip: TripCount::Arg(0),
            },
            IrOp::Compute {
                ops,
                width: ExecSize::S16,
            },
            IrOp::LoopEnd,
        ];
        gpu_device::jit::compile_kernel(&ir)
            .expect("compiles")
            .flatten()
    };
    let light = mk(5);
    let heavy = mk(80);
    let args = [ArgValue::Scalar(20)];
    let topo = GpuGeneration::IvyBridgeHd4000.topology();

    let run = |k: &gen_isa::DecodedKernel| {
        let mut sim = DetailedSimulator::new(topo, 1.15e9, DetailedConfig::default());
        sim.simulate_launch(k, &args, 512)
            .expect("simulates")
            .cycles
    };
    assert!(run(&heavy) > 2 * run(&light), "detailed ordering");

    let analytic = |k: &gen_isa::DecodedKernel| {
        use gpu_device::{
            Cache, CacheConfig, ExecConfig, Executor, TimingConfig, TimingModel, TraceBuffer,
        };
        let mut cache = Cache::new(CacheConfig::default());
        let mut trace = TraceBuffer::new();
        let stats = Executor {
            cache: &mut cache,
            trace: &mut trace,
            config: ExecConfig::default(),
        }
        .execute_launch(k, &args, 512)
        .expect("runs");
        TimingModel::new(
            topo,
            TimingConfig {
                noise: 0.0,
                ..Default::default()
            },
        )
        .launch_seconds_ideal(&stats)
    };
    assert!(
        analytic(&heavy) > 2.0 * analytic(&light),
        "analytic ordering"
    );
}
