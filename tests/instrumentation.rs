//! GT-Pin correctness against device ground truth: the profile
//! reconstructed from injected per-block counters must equal the
//! native hardware counters, and instrumentation must not perturb
//! application-visible behaviour.

use gtpin_suite::device::{Gpu, GpuConfig};
use gtpin_suite::gtpin::{GtPin, RewriteConfig};
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn apps() -> [&'static str; 3] {
    [
        "cb-histogram-buffer",
        "cb-throughput-juliaset",
        "sandra-crypt-aes128",
    ]
}

#[test]
fn gtpin_counts_equal_native_hardware_counters() {
    for name in apps() {
        let spec = spec_by_name(name).expect("known app");
        let program = build_program(&spec, Scale::Test);

        // Native ground truth.
        let mut native = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
        native.run(&program, Schedule::Replay).expect("native run");
        let native_gpu = native.into_device();

        // Instrumented run.
        let mut gpu = Gpu::new(GpuConfig::hd4000());
        let gtpin = GtPin::new(RewriteConfig::default());
        gtpin.attach(&mut gpu);
        let mut rt = OclRuntime::new(gpu);
        rt.run(&program, Schedule::Replay)
            .expect("instrumented run");
        let profile = gtpin.profile(name);

        assert_eq!(
            profile.num_invocations(),
            native_gpu.launches().len(),
            "{name}"
        );
        for (inv, launch) in profile.invocations.iter().zip(native_gpu.launches()) {
            assert_eq!(
                inv.instructions, launch.stats.instructions,
                "{name} launch {}: instruction count",
                inv.launch_index
            );
            assert_eq!(
                inv.per_category, launch.stats.per_category,
                "{name}: category mix"
            );
            assert_eq!(inv.per_width, launch.stats.per_width, "{name}: SIMD widths");
            assert_eq!(
                inv.bytes_read, launch.stats.bytes_read,
                "{name}: bytes read"
            );
            assert_eq!(
                inv.bytes_written, launch.stats.bytes_written,
                "{name}: bytes written"
            );
        }
    }
}

#[test]
fn instrumentation_overhead_sits_in_a_sane_band() {
    let spec = spec_by_name("cb-graphics-t-rex").expect("known app");
    let program = build_program(&spec, Scale::Test);

    let mut gpu = Gpu::new(GpuConfig::hd4000());
    let gtpin = GtPin::new(RewriteConfig {
        count_basic_blocks: true,
        time_kernels: true,
        trace_memory: true,
        naive_per_instruction_counters: false,
    });
    gtpin.attach(&mut gpu);
    let mut rt = OclRuntime::new(gpu);
    rt.run(&program, Schedule::Replay).expect("runs");
    let profile = gtpin.profile(spec.name);
    let instrumented: u64 = rt
        .device()
        .launches()
        .iter()
        .map(|l| l.stats.instructions)
        .sum();
    let factor = instrumented as f64 / profile.total_instructions() as f64;
    assert!(
        factor > 1.05 && factor < 10.0,
        "dynamic instruction overhead {factor:.2}x should be visible but bounded"
    );

    // Modelled run-time overhead (paper: profiling takes 2–10× as
    // long as uninstrumented execution).
    let mut native = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    let native_report = native.run(&program, Schedule::Replay).expect("runs");
    let instrumented_seconds: f64 = rt.device().launches().iter().map(|l| l.seconds).sum();
    let time_factor = instrumented_seconds / native_report.cofluent.total_kernel_seconds();
    assert!(
        time_factor > 1.5 && time_factor < 12.0,
        "modelled profiling overhead {time_factor:.2}x should sit near the paper's 2-10x"
    );
}

#[test]
fn per_kernel_timer_reports_cycles_when_enabled() {
    let spec = spec_by_name("cb-gaussian-buffer").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let mut gpu = Gpu::new(GpuConfig::hd4000());
    let gtpin = GtPin::new(RewriteConfig {
        count_basic_blocks: true,
        time_kernels: true,
        trace_memory: false,
        naive_per_instruction_counters: false,
    });
    gtpin.attach(&mut gpu);
    let mut rt = OclRuntime::new(gpu);
    rt.run(&program, Schedule::Replay).expect("runs");
    let profile = gtpin.profile(spec.name);
    for inv in &profile.invocations {
        let cycles = inv.thread_cycles.expect("timer enabled");
        assert!(
            cycles > 0,
            "launch {} accumulated thread cycles",
            inv.launch_index
        );
    }
}

#[test]
fn memory_tracing_observes_every_global_send() {
    let spec = spec_by_name("cb-histogram-image").expect("known app");
    let program = build_program(&spec, Scale::Test);

    let mut native = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    native.run(&program, Schedule::Replay).expect("native");
    let native_gpu = native.into_device();

    let mut gpu = Gpu::new(GpuConfig::hd4000());
    let gtpin = GtPin::new(RewriteConfig {
        count_basic_blocks: false,
        time_kernels: false,
        trace_memory: true,
        naive_per_instruction_counters: false,
    });
    gtpin.attach(&mut gpu);
    let mut rt = OclRuntime::new(gpu);
    rt.run(&program, Schedule::Replay).expect("instrumented");
    let profile = gtpin.profile(spec.name);

    for (inv, launch) in profile.invocations.iter().zip(native_gpu.launches()) {
        assert_eq!(
            inv.mem_trace.len() as u64,
            launch.stats.global_sends,
            "every global send leaves one trace record"
        );
    }
}
