//! Whole-pipeline determinism: identical inputs produce identical
//! profiles, selections, and reports — the property that makes the
//! methodology reproducible and the experiments in EXPERIMENTS.md
//! regenerable.

use gtpin_suite::device::GpuConfig;
use gtpin_suite::selection::{profile_app, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

#[test]
fn profiles_are_deterministic() {
    let spec = spec_by_name("cb-throughput-bitcoin").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let a = profile_app(&program, GpuConfig::hd4000(), 11).expect("profiles");
    let b = profile_app(&program, GpuConfig::hd4000(), 11).expect("profiles");
    assert_eq!(a.data, b.data);
    assert_eq!(a.profile.invocations, b.profile.invocations);
}

#[test]
fn explorations_are_deterministic() {
    let spec = spec_by_name("cb-gaussian-image").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 2).expect("profiles");
    let run = || {
        Exploration::run(&profiled.data, 50_000, &SimpointConfig::default())
            .evaluations
            .iter()
            .map(|e| (e.config.to_string(), e.error_pct.to_bits(), e.selection.k))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_capture_seeds_may_change_order_but_not_totals() {
    let spec = spec_by_name("cb-graphics-provence").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let a = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");
    let b = profile_app(&program, GpuConfig::hd4000(), 99).expect("profiles");
    assert_eq!(
        a.data.total_instructions(),
        b.data.total_instructions(),
        "work is schedule-invariant"
    );
}

#[test]
fn serde_round_trips_the_key_artifacts() {
    let spec = spec_by_name("cb-histogram-image").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");

    let json = serde_json::to_string(&profiled.data).expect("serializes");
    let back: subset_select::AppData = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(profiled.data, back);

    let ex = Exploration::run(&profiled.data, 50_000, &SimpointConfig::default());
    let best = ex.min_error().expect("evaluations exist");
    let json = serde_json::to_string(best).expect("serializes");
    let back: subset_select::Evaluation = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(best.error_pct.to_bits(), back.error_pct.to_bits());
}
