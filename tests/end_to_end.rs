//! End-to-end pipeline tests: workload → JIT → GT-Pin
//! instrumentation → native execution → profile → intervals →
//! features → SimPoint → selection → SPI projection.

use gtpin_suite::device::GpuConfig;
use gtpin_suite::selection::{build_intervals, profile_app, Exploration, IntervalScheme};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn explore(name: &str) -> (Exploration, subset_select::AppData) {
    let spec = spec_by_name(name).expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");
    let data = profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(&data);
    (
        Exploration::run(&data, approx, &SimpointConfig::default()),
        data,
    )
}

#[test]
fn full_pipeline_produces_accurate_selections() {
    for name in ["cb-physics-ocean-surf", "sonyvegas-proj-r1"] {
        let (ex, data) = explore(name);
        assert_eq!(ex.evaluations.len(), 30, "{name}: all 30 configs evaluated");
        let best = ex.min_error().expect("evaluations exist");
        assert!(
            best.error_pct < 8.0,
            "{name}: best error {:.2}% should be small at test scale",
            best.error_pct
        );
        assert!(
            best.speedup() > 1.5,
            "{name}: speedup {:.1}",
            best.speedup()
        );
        assert!(
            (best.selection.total_ratio() - 1.0).abs() < 1e-9,
            "{name}: representation ratios sum to 1"
        );
        assert!(best.selected_instructions <= data.total_instructions());
    }
}

#[test]
fn every_config_projects_a_positive_spi() {
    let (ex, _) = explore("cb-gaussian-buffer");
    for e in &ex.evaluations {
        assert!(e.projected_spi > 0.0, "{}: projected SPI", e.config);
        assert!(e.measured_spi > 0.0);
        assert!(e.error_pct.is_finite());
        assert!(
            e.selection.k <= 10,
            "{}: max 10 clusters as in the paper",
            e.config
        );
    }
}

#[test]
fn intervals_respect_the_simulator_team_constraints() {
    // The paper's strict requirement: selections are at least one
    // whole kernel invocation and never span a synchronization call.
    let spec = spec_by_name("cb-vision-tv-l1-of").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");
    let data = &profiled.data;
    let epochs = data.invocations.last().unwrap().sync_epoch as u64 + 1;
    for scheme in [
        IntervalScheme::SyncBounded,
        IntervalScheme::ApproxInstructions(data.total_instructions() / (2 * epochs)),
        IntervalScheme::SingleKernel,
    ] {
        let intervals = build_intervals(data, scheme);
        let mut cursor = 0;
        for iv in &intervals {
            assert_eq!(iv.start, cursor, "{scheme}: contiguous whole invocations");
            assert!(!iv.is_empty(), "{scheme}: at least one whole invocation");
            let epoch = data.invocations[iv.start].sync_epoch;
            for i in iv.start..iv.end {
                assert_eq!(
                    data.invocations[i].sync_epoch, epoch,
                    "{scheme}: interval spans a synchronization call"
                );
            }
            cursor = iv.end;
        }
        assert_eq!(cursor, data.invocations.len(), "{scheme}: covers the trace");
    }
}

#[test]
fn selecting_every_interval_projects_exactly() {
    // The weighted-mean identity: when every interval is its own
    // cluster, projected SPI equals measured SPI by construction.
    use gtpin_suite::selection::{evaluate_config, FeatureKind, SelectionConfig};
    let spec = spec_by_name("cb-gaussian-image").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");
    let sp = SimpointConfig {
        max_k: 10_000,
        bic_fraction: 1.0,
        ..SimpointConfig::default()
    };
    let e = evaluate_config(
        &profiled.data,
        SelectionConfig {
            interval: IntervalScheme::SingleKernel,
            features: FeatureKind::KnArgsGws,
        },
        &sp,
    )
    .expect("evaluates");
    if e.selection.k == e.intervals.len() {
        assert!(
            e.error_pct < 1e-6,
            "full selection must project exactly, got {:.6}%",
            e.error_pct
        );
    }
}
