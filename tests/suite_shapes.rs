//! The characterization shapes of Figures 3–4, asserted as tests:
//! the headline qualitative facts the paper reports must hold in the
//! reproduced suite (at test scale; the benches verify them at full
//! scale).

use gtpin_suite::device::GpuConfig;
use gtpin_suite::gtpin::AppCharacterization;
use gtpin_suite::isa::{ExecSize, OpcodeCategory};
use gtpin_suite::selection::profile_app;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn characterize(name: &str) -> AppCharacterization {
    let spec = spec_by_name(name).expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1).expect("profiles");
    AppCharacterization::new(&profiled.cofluent, &profiled.profile)
}

#[test]
fn proc_gpu_is_computation_dominated() {
    // Figure 4a: proc-gpu stands out at ~91% computation.
    let c = characterize("sandra-proc-gpu");
    assert!(
        c.category_fraction(OpcodeCategory::Computation) > 0.70,
        "proc-gpu computation fraction {:.2}",
        c.category_fraction(OpcodeCategory::Computation)
    );
}

#[test]
fn crypto_reads_dwarf_writes() {
    // Figure 4c: the two cryptography applications read the most.
    let c = characterize("sandra-crypt-aes256");
    assert!(
        c.bytes_read > 5 * c.bytes_written,
        "aes256 reads {} vs writes {}",
        c.bytes_read,
        c.bytes_written
    );
}

#[test]
fn sony_apps_write_more_than_they_read() {
    // Figure 4c: the seven Sony apps are write-heavy; proj-r5 extreme.
    let c = characterize("sonyvegas-proj-r5");
    assert!(
        c.bytes_written > 20 * c.bytes_read,
        "proj-r5 writes {} vs reads {}",
        c.bytes_written,
        c.bytes_read
    );
}

#[test]
fn simd2_is_never_used_and_wide_simd_dominates() {
    // Figure 4b: 2-wide instructions are never used; 16- and 8-wide
    // together dominate.
    for name in [
        "cb-graphics-t-rex",
        "cb-throughput-juliaset",
        "sandra-crypt-aes128",
    ] {
        let c = characterize(name);
        assert_eq!(
            c.width_fraction(ExecSize::S2),
            0.0,
            "{name}: width 2 never used"
        );
        let wide = c.width_fraction(ExecSize::S16) + c.width_fraction(ExecSize::S8);
        assert!(wide > 0.6, "{name}: wide SIMD fraction {wide:.2}");
    }
}

#[test]
fn bitcoin_has_the_lowest_kernel_call_fraction() {
    // Figure 3a: throughput-bitcoin launches kernels with only ~4.5%
    // of its API calls; part-sim-32k with ~76.5%.
    let bitcoin = characterize("cb-throughput-bitcoin");
    let partsim = characterize("cb-physics-part-sim-32k");
    assert!(
        bitcoin.kernel_call_fraction < 0.10,
        "bitcoin kernel fraction {:.3}",
        bitcoin.kernel_call_fraction
    );
    assert!(
        partsim.kernel_call_fraction > 0.5,
        "part-sim-32k kernel fraction {:.3}",
        partsim.kernel_call_fraction
    );
}

#[test]
fn juliaset_is_sync_heavy_with_few_calls() {
    // Figure 3a: juliaset has the highest sync share and the fewest
    // total API calls.
    let julia = characterize("cb-throughput-juliaset");
    assert!(
        julia.sync_call_fraction > 0.12,
        "sync {:.3}",
        julia.sync_call_fraction
    );
    let trex = characterize("cb-graphics-t-rex");
    assert!(julia.total_api_calls < trex.total_api_calls / 3);
}

#[test]
fn control_fraction_is_single_digit_percent() {
    // Figure 4a: control averages 7.3% across the suite.
    for name in ["cb-physics-ocean-surf", "sonyvegas-proj-r3"] {
        let c = characterize(name);
        let ctl = c.category_fraction(OpcodeCategory::Control);
        assert!(
            (0.02..0.16).contains(&ctl),
            "{name}: control fraction {ctl:.3} should be single-digit-ish percent"
        );
    }
}
