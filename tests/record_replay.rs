//! CoFluent-style record/replay semantics: recordings pin down API
//! order; replays are deterministic; cross-trial validation works
//! on top (Section V-E).

use gtpin_suite::device::{Gpu, GpuConfig};
use gtpin_suite::runtime::cofluent::Recording;
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::selection::{cross_error_pct, profile_app, replay_timings, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

#[test]
fn replays_of_a_recording_are_bit_identical() {
    let spec = spec_by_name("cb-physics-part-sim-64k").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    let (recording, _) = Recording::capture(&mut rt, &program, 42).expect("captures");

    let run = || {
        let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
        let r = recording.replay(&mut rt).expect("replays");
        r.cofluent
            .invocations
            .iter()
            .map(|i| (i.kernel, i.global_work_size, i.seconds.to_bits()))
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run(), "same device config → bit-identical timings");
}

#[test]
fn natural_trials_can_reorder_but_replay_is_stable() {
    let spec = spec_by_name("cb-graphics-t-rex").expect("known app");
    let program = build_program(&spec, Scale::Test);

    let resolved = |seed: u64| {
        let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
        rt.run(&program, Schedule::Natural { seed })
            .expect("runs")
            .resolved_calls
    };
    // At least one pair of seeds disagrees on order (the
    // non-determinism CoFluent recordings exist to pin down).
    let base = resolved(0);
    assert!(
        (1..12).any(|s| resolved(s) != base),
        "natural scheduling shows run-to-run order variation"
    );
}

#[test]
fn one_trials_selections_hold_across_trials() {
    let spec = spec_by_name("sonyvegas-proj-r2").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 7).expect("profiles");
    let data = &profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(data);
    let ex = Exploration::run(data, approx, &SimpointConfig::default());
    let best = ex.min_error().expect("evaluations exist");

    for trial in 2..=5u64 {
        let timing = replay_timings(
            &profiled.recording,
            GpuConfig::hd4000().with_trial_seed(trial),
        )
        .expect("replays");
        let new_data = data.with_timings(&timing).expect("same order");
        let err = cross_error_pct(best, &new_data);
        assert!(
            err < best.error_pct + 3.0,
            "trial {trial}: error {err:.2}% should stay near the original {:.2}%",
            best.error_pct
        );
    }
}

#[test]
fn cross_frequency_validation_stays_accurate() {
    let spec = spec_by_name("cb-physics-ocean-surf").expect("known app");
    let program = build_program(&spec, Scale::Test);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 3).expect("profiles");
    let data = &profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(data);
    let ex = Exploration::run(data, approx, &SimpointConfig::default());
    let best = ex.min_error().expect("evaluations exist");

    for freq in [1.0e9, 0.7e9, 0.35e9] {
        let timing = replay_timings(
            &profiled.recording,
            GpuConfig::hd4000()
                .with_trial_seed(2)
                .with_frequency_hz(freq),
        )
        .expect("replays");
        let new_data = data.with_timings(&timing).expect("same order");
        let err = cross_error_pct(best, &new_data);
        assert!(
            err < 8.0,
            "{:.0}MHz: error {err:.2}% should stay mostly below the paper's 3% band",
            freq / 1e6
        );
    }
}
