//! Cross-architecture-generation validation (Figure 8 bottom): Ivy
//! Bridge selections predict Haswell performance; Haswell is the
//! faster part (LuxMark 269 vs 351 in the paper).

use gtpin_suite::device::GpuConfig;
use gtpin_suite::selection::{cross_error_pct, profile_app, replay_timings, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, luxmark_score, spec_by_name, Scale};

#[test]
fn luxmark_ordering_matches_the_paper() {
    let ivy = luxmark_score(GpuConfig::hd4000());
    let hsw = luxmark_score(GpuConfig::hd4600());
    assert!(hsw > ivy, "HD4600 {hsw:.0} must outscore HD4000 {ivy:.0}");
    assert!(
        (150.0..450.0).contains(&ivy),
        "scores land near the paper's magnitudes (269/351): {ivy:.0}"
    );
}

#[test]
fn ivy_bridge_selections_predict_haswell() {
    for name in ["cb-throughput-ao", "sonyvegas-proj-r5"] {
        let spec = spec_by_name(name).expect("known app");
        let program = build_program(&spec, Scale::Test);
        let profiled = profile_app(&program, GpuConfig::hd4000(), 5).expect("profiles");
        let data = &profiled.data;
        let approx = gtpin_suite::selection::default_approx_target(data);
        let ex = Exploration::run(data, approx, &SimpointConfig::default());
        let best = ex.min_error().expect("evaluations exist");

        let timing = replay_timings(&profiled.recording, GpuConfig::hd4600().with_trial_seed(9))
            .expect("replays on Haswell");
        let haswell = data.with_timings(&timing).expect("same order");
        let err = cross_error_pct(best, &haswell);
        assert!(
            err < 12.0,
            "{name}: Haswell error {err:.2}% (paper's worst case was ~11%)"
        );

        // The Haswell replay really is a different machine: totals move.
        assert!(
            (haswell.total_seconds() - data.total_seconds()).abs() / data.total_seconds() > 1e-4,
            "{name}: Haswell timings differ from Ivy Bridge"
        );
    }
}
