//! Quickstart: write a tiny OpenCL-style program, run it on the
//! modelled HD 4000 with GT-Pin attached, and print what the tool
//! observed.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gtpin_suite::device::{Gpu, GpuConfig};
use gtpin_suite::gtpin::{AppCharacterization, GtPin, RewriteConfig};
use gtpin_suite::isa::ExecSize;
use gtpin_suite::runtime::api::{ArgValue, KernelId, SyncCall};
use gtpin_suite::runtime::host::{HostScriptBuilder, ProgramSource};
use gtpin_suite::runtime::ir::{AccessPattern, IrOp, KernelIr, TripCount};
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A kernel in IR form (standing in for OpenCL C source): a
    //    saxpy-ish loop whose trip count comes from argument 0.
    let mut kernel = KernelIr::new("saxpy", 3);
    kernel.body = vec![
        IrOp::LoopBegin {
            trip: TripCount::Arg(0),
        },
        IrOp::Load {
            arg: 1,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        },
        IrOp::Compute {
            ops: 8,
            width: ExecSize::S16,
        },
        IrOp::Store {
            arg: 2,
            bytes: 64,
            width: ExecSize::S16,
            pattern: AccessPattern::Linear,
        },
        IrOp::LoopEnd,
    ];

    // 2. A host program: buffers, argument setup, launches with two
    //    different problem sizes, and a synchronization call.
    let source = ProgramSource {
        kernels: vec![kernel],
    };
    let mut host = HostScriptBuilder::new("quickstart", source);
    host.create_buffer(0, 1 << 20).create_buffer(1, 1 << 20);
    host.set_arg(KernelId(0), 1, ArgValue::Buffer(0));
    host.set_arg(KernelId(0), 2, ArgValue::Buffer(1));
    for trip in [16u64, 64] {
        host.set_arg(KernelId(0), 0, ArgValue::Scalar(trip));
        host.launch(KernelId(0), 1024);
        host.sync(SyncCall::Finish);
    }
    let program = host.finish()?;

    // 3. A GPU with GT-Pin attached: the driver JIT-compiles the
    //    kernel, the binary rewriter injects per-block counters, and
    //    the injected code fills the trace buffer as the kernel runs.
    let mut gpu = Gpu::new(GpuConfig::hd4000());
    let gtpin = GtPin::new(RewriteConfig::default());
    gtpin.attach(&mut gpu);
    let mut runtime = OclRuntime::new(gpu);
    let report = runtime.run(&program, Schedule::Replay)?;

    // 4. What GT-Pin saw.
    let profile = gtpin.profile("quickstart");
    println!("{}", AppCharacterization::new(&report.cofluent, &profile));
    println!();
    for inv in &profile.invocations {
        println!(
            "launch {}: kernel {} gws {} → {} instructions, {} B read, {} B written",
            inv.launch_index,
            inv.kernel_name,
            inv.global_work_size,
            inv.instructions,
            inv.bytes_read,
            inv.bytes_written
        );
    }
    println!();
    println!(
        "instrumentation overhead estimate: {:.2}x dynamic instructions",
        profile.dynamic_overhead_factor()
    );
    Ok(())
}
