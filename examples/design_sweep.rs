//! The paper's end goal: evaluate a future GPU design by simulating
//! only the selected subsets in detail, then extrapolating
//! whole-program performance from the representation ratios
//! (Section V-A steps 6–7).
//!
//! This example:
//! 1. profiles an application natively on the Ivy Bridge model and
//!    selects representative intervals,
//! 2. simulates *only the selected invocations* in the detailed
//!    cycle-level simulator, for several candidate designs
//!    (frequency scaling and the 20-EU Haswell), and
//! 3. compares the subset-extrapolated cycles against simulating the
//!    full program in detail — showing the error/speedup trade the
//!    paper promises.
//!
//! ```sh
//! cargo run --release --example design_sweep
//! ```

use gtpin_suite::device::cache::CacheConfig;
use gtpin_suite::device::checkpoint::{CheckpointLibrary, LaunchDescriptor};
use gtpin_suite::device::detailed::{DetailedConfig, DetailedSimulator};
use gtpin_suite::device::{Gpu, GpuConfig, GpuGeneration, GpuTopology};
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::selection::{profile_app, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name("cb-vision-facedetect").expect("known app");
    let program = build_program(&spec, Scale::Test);

    // 1. Native profile + selection on today's hardware.
    println!("profiling {} natively on the HD 4000 model ...", spec.name);
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let data = &profiled.data;
    let approx = gtpin_suite::selection::default_approx_target(data);
    let exploration = Exploration::run(data, approx, &SimpointConfig::default());
    let selection = exploration.min_error().expect("configurations evaluated");
    println!(
        "selection: {} — {} representatives, {:.2}% of instructions, native error {:.2}%",
        selection.config,
        selection.selection.k,
        selection.selection_fraction() * 100.0,
        selection.error_pct
    );

    // Replay once per design to collect launch descriptors and
    // compiled binaries for the detailed simulator.
    let mut rt = OclRuntime::new(Gpu::new(GpuConfig::hd4000()));
    rt.run(&program, Schedule::Replay)?;
    let gpu = rt.into_device();

    println!();
    println!(
        "{:34} {:>16} {:>16} {:>8} {:>9}",
        "candidate design", "full-sim cycles", "subset cycles", "error", "sim work"
    );
    let value_design = GpuTopology {
        name: "hypothetical 8-EU value part",
        execution_units: 8,
        subslices: 1,
        threads_per_eu: 7,
        max_frequency_hz: 1.0e9,
        llc_slice_kib: 128,
        dram_bytes_per_second: 8.0e9,
        l3_bytes_per_cycle: 32.0,
    };
    let designs: Vec<(String, GpuTopology, f64)> = vec![
        (
            "Ivy Bridge HD4000 @ 1150MHz".into(),
            GpuGeneration::IvyBridgeHd4000.topology(),
            1.15e9,
        ),
        (
            "Ivy Bridge HD4000 @ 350MHz".into(),
            GpuGeneration::IvyBridgeHd4000.topology(),
            0.35e9,
        ),
        (
            "Haswell HD4600 @ 1250MHz".into(),
            GpuGeneration::HaswellHd4600.topology(),
            1.25e9,
        ),
        ("8-EU value design @ 1000MHz".into(), value_design, 1.0e9),
    ];

    for (name, topology, freq) in designs {
        // Full-program detailed simulation (what the paper wants to avoid).
        let mut full_sim = DetailedSimulator::new(topology, freq, DetailedConfig::default());
        let (full_cycles, full_instrs) = simulate(&gpu, &mut full_sim, 0..data.invocations.len());

        // Subset-only detailed simulation, extrapolated by ratios.
        // Each sample starts from a PinPlay-style checkpoint: warm
        // cache state captured by one cheap functional replay
        // (gpu_device::checkpoint), so samples pay no cold-start
        // penalty and no detailed warm-up cycles.
        let kernels: Vec<_> = (0..program.source.kernels.len())
            .map(|i| gpu.driver().kernel(i).expect("built").clone())
            .collect();
        let descriptors: Vec<LaunchDescriptor> = gpu
            .launches()
            .iter()
            .map(|l| LaunchDescriptor {
                kernel_index: l.kernel.index(),
                args: l.args.clone(),
                global_work_size: l.global_work_size,
            })
            .collect();
        let boundaries: Vec<usize> = selection
            .selection
            .picks
            .iter()
            .map(|p| selection.intervals[p.interval].start)
            .collect();
        let checkpoints = CheckpointLibrary::build(
            &kernels,
            &descriptors,
            CacheConfig::llc_slice(topology.llc_slice_kib),
            &boundaries,
        )?;

        let mut projected_cpi = 0.0;
        let mut subset_instrs = 0u64;
        for pick in &selection.selection.picks {
            let iv = selection.intervals[pick.interval];
            let mut sim = DetailedSimulator::new(topology, freq, DetailedConfig::default());
            if let Some(cache) = checkpoints.cache_before(iv.start) {
                sim.restore_cache(cache.clone());
            }
            let (cycles, instrs) = simulate(&gpu, &mut sim, iv.start..iv.end);
            subset_instrs += instrs;
            projected_cpi += pick.ratio * cycles as f64 / instrs.max(1) as f64;
        }
        let projected_cycles = projected_cpi * full_instrs as f64;
        let error = (projected_cycles - full_cycles as f64).abs() / full_cycles as f64 * 100.0;
        println!(
            "{:34} {:>16} {:>16.0} {:>7.2}% {:>8.1}x",
            name,
            full_cycles,
            projected_cycles,
            error,
            full_instrs as f64 / subset_instrs as f64
        );
    }
    println!();
    println!("'sim work' is the detailed-simulation reduction: the subset predicts");
    println!("each design's full-program cycles from a fraction of the instructions");
    Ok(())
}

/// Detailed-simulate a range of invocations on a candidate design;
/// returns (cycles, instructions).
fn simulate(gpu: &Gpu, sim: &mut DetailedSimulator, range: std::ops::Range<usize>) -> (u64, u64) {
    let mut cycles = 0u64;
    let mut instrs = 0u64;
    for launch in &gpu.launches()[range] {
        let kernel = gpu
            .driver()
            .kernel(launch.kernel.index())
            .expect("kernel was built");
        let r = sim
            .simulate_launch(kernel, &launch.args, launch.global_work_size)
            .expect("simulation runs");
        cycles += r.cycles;
        instrs += r.stats.instructions;
    }
    (cycles, instrs)
}
