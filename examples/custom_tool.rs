//! Writing a custom GT-Pin tool (Section III-B: "users may collect
//! only the desired subset of these statistics by writing custom
//! profiling tools").
//!
//! This example registers three tools:
//! * a hand-written tool that tracks the hottest kernel by
//!   instruction count,
//! * the stock [`CacheSimTool`] (trace-driven cache simulation), and
//! * the stock [`LatencyTool`] (per-send-site latency estimation),
//!
//! and enables memory tracing so the trace-driven tools have
//! addresses to chew on.
//!
//! ```sh
//! cargo run --release --example custom_tool
//! ```

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gtpin_suite::device::cache::CacheConfig;
use gtpin_suite::device::{Gpu, GpuConfig};
use gtpin_suite::gtpin::tools::{CacheSimTool, LatencyTool};
use gtpin_suite::gtpin::{GtPin, InvocationProfile, RewriteConfig, Tool, ToolContext};
use gtpin_suite::runtime::runtime::{OclRuntime, Schedule};
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

/// A user-written tool: who is the hottest kernel?
#[derive(Default)]
struct HotKernelTool {
    per_kernel: HashMap<String, u64>,
}

impl Tool for HotKernelTool {
    fn name(&self) -> &str {
        "hot-kernel"
    }

    fn on_kernel_complete(&mut self, profile: &InvocationProfile, _ctx: &ToolContext<'_>) {
        *self
            .per_kernel
            .entry(profile.kernel_name.clone())
            .or_insert(0) += profile.instructions;
    }

    fn report(&self) -> String {
        let mut rows: Vec<(&String, &u64)> = self.per_kernel.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1));
        let total: u64 = self.per_kernel.values().sum();
        let mut out = String::from("hot-kernel report:\n");
        for (name, instrs) in rows.into_iter().take(5) {
            out.push_str(&format!(
                "  {:40} {:>12} instrs ({:.1}%)\n",
                name,
                instrs,
                *instrs as f64 / total.max(1) as f64 * 100.0
            ));
        }
        out
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = spec_by_name("cb-vision-facedetect").expect("known app");
    let program = build_program(&spec, Scale::Test);

    // Enable memory tracing so trace-driven tools receive addresses.
    let config = RewriteConfig {
        count_basic_blocks: true,
        time_kernels: true,
        trace_memory: true,
        naive_per_instruction_counters: false,
    };
    let gtpin = GtPin::new(config);

    let hot = Rc::new(RefCell::new(HotKernelTool::default()));
    let cache = Rc::new(RefCell::new(CacheSimTool::new(CacheConfig::llc_slice(256))));
    let latency = Rc::new(RefCell::new(LatencyTool::new(
        CacheConfig::llc_slice(256),
        50,
        300,
    )));
    gtpin.add_tool(hot.clone());
    gtpin.add_tool(cache.clone());
    gtpin.add_tool(latency.clone());

    let mut gpu = Gpu::new(GpuConfig::hd4000());
    gtpin.attach(&mut gpu);
    let mut runtime = OclRuntime::new(gpu);
    runtime.run(&program, Schedule::Replay)?;

    println!("{}", hot.borrow().report());
    println!("{}", cache.borrow().report());
    println!("{}", latency.borrow().report());

    let profile = gtpin.profile(spec.name);
    let timed: Vec<u64> = profile
        .invocations
        .iter()
        .filter_map(|i| i.thread_cycles)
        .collect();
    println!(
        "kernel timer: {} invocations timed, {} total thread-cycles",
        timed.len(),
        timed.iter().sum::<u64>()
    );
    Ok(())
}
