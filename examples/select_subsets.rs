//! End-to-end simulation subset selection (Section V): profile an
//! application once natively, explore all 30 interval/feature
//! configurations, and report the selections a simulator team would
//! use in place of the full program.
//!
//! ```sh
//! cargo run --release --example select_subsets [app-name] [error-threshold-%]
//! ```

use gtpin_suite::device::GpuConfig;
use gtpin_suite::selection::{profile_app, Exploration};
use gtpin_suite::simpoint::SimpointConfig;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "sonyvegas-proj-r3".into());
    let threshold: f64 = std::env::args()
        .nth(2)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(3.0);
    let spec = spec_by_name(&name)
        .ok_or_else(|| format!("unknown app {name}; see workloads::all_specs()"))?;

    let program = build_program(&spec, Scale::Default);
    println!(
        "profiling {} natively (no simulation required) ...",
        spec.name
    );
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let data = &profiled.data;

    let approx = gtpin_suite::selection::default_approx_target(data);
    println!(
        "exploring 30 interval/feature configurations over {} invocations ...",
        data.invocations.len()
    );
    let exploration = Exploration::run(data, approx, &SimpointConfig::default());

    let best = exploration.min_error().expect("configurations evaluated");
    println!();
    println!("error-minimizing configuration: {}", best.config);
    println!(
        "  error {:.3}%   speedup {:.1}x   {} intervals → {} selected",
        best.error_pct,
        best.speedup(),
        best.intervals.len(),
        best.selection.k
    );
    for pick in &best.selection.picks {
        let iv = best.intervals[pick.interval];
        println!(
            "  simulate invocations [{:>5}, {:>5})  weight {:.1}%",
            iv.start,
            iv.end,
            pick.ratio * 100.0
        );
    }

    let co = exploration
        .co_optimize(threshold)
        .expect("configurations evaluated");
    println!();
    println!(
        "co-optimized at {threshold}% error threshold: {}",
        co.config
    );
    println!(
        "  error {:.3}%   speedup {:.1}x   simulate only {:.2}% of {} instructions",
        co.error_pct,
        co.speedup(),
        co.selection_fraction() * 100.0,
        data.total_instructions()
    );
    println!();
    println!(
        "projected whole-program SPI {:.3e} vs measured {:.3e}",
        co.projected_spi, co.measured_spi
    );
    Ok(())
}
