//! Characterize one of the paper's 25 applications the way
//! Section IV does: API-call breakdown, program structure, dynamic
//! work, instruction mix, SIMD widths, memory activity.
//!
//! ```sh
//! cargo run --release --example characterize [app-name]
//! ```
//!
//! Run with no argument for `cb-physics-ocean-surf`, or pass any
//! Table I name (see `workloads::all_specs`).

use gtpin_suite::device::GpuConfig;
use gtpin_suite::gtpin::AppCharacterization;
use gtpin_suite::isa::{ExecSize, OpcodeCategory};
use gtpin_suite::selection::profile_app;
use gtpin_suite::workloads::{build_program, spec_by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "cb-physics-ocean-surf".into());
    let spec = spec_by_name(&name)
        .ok_or_else(|| format!("unknown app {name}; see workloads::all_specs()"))?;

    println!("building {} ({:?}) ...", spec.name, spec.suite);
    let program = build_program(&spec, Scale::Default);
    println!(
        "profiling natively with GT-Pin ({} kernels, {} API calls) ...",
        spec.unique_kernels,
        program.calls.len()
    );
    let profiled = profile_app(&program, GpuConfig::hd4000(), 1)?;
    let c = AppCharacterization::new(&profiled.cofluent, &profiled.profile);

    println!();
    println!("{c}");
    println!();
    println!("instruction mix (Figure 4a):");
    for cat in OpcodeCategory::ALL {
        println!(
            "  {:12} {:6.1}%",
            cat.label(),
            c.category_fraction(cat) * 100.0
        );
    }
    println!("SIMD widths (Figure 4b):");
    for w in ExecSize::ALL {
        println!(
            "  width {:2}     {:6.1}%",
            w.lanes(),
            c.width_fraction(w) * 100.0
        );
    }
    println!();
    println!(
        "whole-program SPI: {:.3e} s/instr over {} s of kernel time",
        profiled.data.measured_spi(),
        profiled.data.total_seconds()
    );
    Ok(())
}
