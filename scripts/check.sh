#!/usr/bin/env bash
# Repo gate: formatting, lints, the tier-1 build+test pass, and the
# parallel/serial determinism properties at both a forced-serial and a
# forced-parallel thread count.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "== full workspace tests"
cargo test --workspace -q

echo "== determinism properties at GTPIN_THREADS=1"
GTPIN_THREADS=1 cargo test -q -p simpoint --test prop_parallel
GTPIN_THREADS=1 cargo test -q -p subset-select --test prop_parallel

echo "== determinism properties at GTPIN_THREADS=4"
GTPIN_THREADS=4 cargo test -q -p simpoint --test prop_parallel
GTPIN_THREADS=4 cargo test -q -p subset-select --test prop_parallel

echo "== sharded-simulator gate: detailed sim serial vs 4 workers, digests diffed"
SIM_DIR="$(pwd)/target/sim-check"
rm -rf "$SIM_DIR"
mkdir -p "$SIM_DIR"
SIM_APP=sandra-crypt-aes128
GTPIN_SIM_THREADS=1 ./target/release/gtpin sim "$SIM_APP" \
    > "$SIM_DIR/serial.txt" 2>/dev/null
GTPIN_SIM_THREADS=4 ./target/release/gtpin sim "$SIM_APP" \
    > "$SIM_DIR/sharded.txt" 2>/dev/null
diff -u "$SIM_DIR/serial.txt" "$SIM_DIR/sharded.txt" || {
    echo "FAIL: 4-worker detailed simulation diverged from serial"
    exit 1
}
grep -q "stats digest:" "$SIM_DIR/serial.txt" || {
    cat "$SIM_DIR/serial.txt"
    echo "FAIL: gtpin sim did not emit a stats digest"
    exit 1
}
echo "4-worker stats digest is byte-identical to serial"

echo "== telemetry smoke: tier-1 tests under GTPIN_OBS=1"
# Absolute dir: test binaries run with per-crate working directories.
OBS_DIR="$(pwd)/target/obs-check"
rm -rf "$OBS_DIR"
GTPIN_OBS=1 GTPIN_OBS_DIR="$OBS_DIR" cargo test -q
test -s "$OBS_DIR/journal.gtobs" || {
    echo "FAIL: GTPIN_OBS=1 test run left no binary journal at $OBS_DIR/journal.gtobs"
    exit 1
}

echo "== GTOBS01 gate: flushed sim journal verifies, converts, matches artifacts"
OBS_SIM_DIR="$(pwd)/target/obs-sim-check"
rm -rf "$OBS_SIM_DIR"
mkdir -p "$OBS_SIM_DIR"
GTPIN_OBS=1 GTPIN_OBS_DIR="$OBS_SIM_DIR" GTPIN_SIM_THREADS=4 \
    ./target/release/gtpin sim sandra-crypt-aes128 >/dev/null 2>&1
# CRC + version + structure verification of the binary journal.
./target/release/gtpin obs-verify "$OBS_SIM_DIR/journal.gtobs"
# Legacy JSONL verification still works on the converted artifact.
./target/release/gtpin obs-verify "$OBS_SIM_DIR/journal.jsonl"
# The standalone converter must reproduce the artifact writer's output
# byte-for-byte (both derive from the same binary journal).
./target/release/gtpin obs-convert "$OBS_SIM_DIR/journal.gtobs" \
    --jsonl "$OBS_SIM_DIR/converted.jsonl" --trace "$OBS_SIM_DIR/converted-trace.json" \
    2>/dev/null
diff -q "$OBS_SIM_DIR/journal.jsonl" "$OBS_SIM_DIR/converted.jsonl" || {
    echo "FAIL: obs-convert JSONL differs from the write_artifacts journal"
    exit 1
}
diff -q "$OBS_SIM_DIR/trace.json" "$OBS_SIM_DIR/converted-trace.json" || {
    echo "FAIL: obs-convert Chrome trace differs from the write_artifacts trace"
    exit 1
}
# Pinned goldens: the binary->text converters must stay byte-identical
# to the legacy direct exporters.
cargo test -q -p gtpin-obs --test golden

echo "== obs-timeline determinism: per-EU report diffed across 1/2/4/8 sim threads"
TL_DIR="$(pwd)/target/obs-timeline-check"
rm -rf "$TL_DIR"
mkdir -p "$TL_DIR"
for T in 1 2 4 8; do
    rm -rf "$TL_DIR/run-$T"
    mkdir -p "$TL_DIR/run-$T"
    GTPIN_OBS=1 GTPIN_OBS_DIR="$TL_DIR/run-$T" GTPIN_SIM_THREADS=$T \
        ./target/release/gtpin sim sandra-crypt-aes128 >/dev/null 2>&1
    ./target/release/gtpin obs-timeline "$TL_DIR/run-$T/journal.gtobs" \
        > "$TL_DIR/timeline-$T.txt" 2>/dev/null
done
for T in 2 4 8; do
    diff -u "$TL_DIR/timeline-1.txt" "$TL_DIR/timeline-$T.txt" || {
        echo "FAIL: obs-timeline at GTPIN_SIM_THREADS=$T diverged from serial"
        exit 1
    }
done
grep -q "eu" "$TL_DIR/timeline-1.txt" || {
    cat "$TL_DIR/timeline-1.txt"
    echo "FAIL: obs-timeline emitted no per-EU table"
    exit 1
}
echo "obs-timeline is byte-identical at 1/2/4/8 sim threads"

echo "== obs drain bench: binary >=3x legacy JSONL, disabled path ~free"
# The bench asserts speedup >= 3x, byte-identical conversion, and a
# single-branch disabled path, then refreshes BENCH_obsdrain.json.
cargo bench -q -p bench-suite --bench obsdrain >/dev/null
grep -q '"jsonl_identical": true' BENCH_obsdrain.json || {
    cat BENCH_obsdrain.json
    echo "FAIL: BENCH_obsdrain.json does not attest byte-identical conversion"
    exit 1
}

echo "== static analysis: lint + instrumentation-safety verifier over all builtin workloads"
LINT_OUT="$(cargo run -q --release --bin gtpin -- lint --all 2>&1)" || {
    echo "$LINT_OUT"
    echo "FAIL: gtpin lint --all reported errors or an unsafe rewrite"
    exit 1
}
echo "$LINT_OUT" | grep -q "0 error(s)" || {
    echo "$LINT_OUT"
    echo "FAIL: gtpin lint --all did not emit its zero-error summary"
    exit 1
}

echo "== analyze gate: structural analysis over all builtin workloads, digest pinned"
# The digest folds every kernel's rendered analysis (dominators,
# loop forest, trip bounds, value ranges, static cycle estimate), so
# any behavioral drift in the analyzer shows up here. Re-pin only
# after reviewing the new output.
ANALYZE_DIGEST=11e584116b5aecc7
ANALYZE_OUT="$(./target/release/gtpin analyze --all 2>&1)" || {
    echo "$ANALYZE_OUT"
    echo "FAIL: gtpin analyze --all reported an error"
    exit 1
}
echo "$ANALYZE_OUT" | grep -q "across 25 app(s)" || {
    echo "$ANALYZE_OUT" | tail -5
    echo "FAIL: gtpin analyze --all did not cover all 25 builtin apps"
    exit 1
}
echo "$ANALYZE_OUT" | grep -q "analysis digest: $ANALYZE_DIGEST" || {
    echo "$ANALYZE_OUT" | tail -5
    echo "FAIL: gtpin analyze --all digest drifted from pinned $ANALYZE_DIGEST"
    exit 1
}
echo "analysis digest matches pinned $ANALYZE_DIGEST"

echo "== unwrap/expect self-lint: crates/**/src vs scripts/unwrap_allowlist.txt"
# Production code threads errors; unwrap()/expect( budgets are pinned
# per file (test modules account for nearly all of them). A file over
# budget — or a new file with any calls — fails the gate.
UNWRAP_FAIL=0
while IFS= read -r SRC; do
    N=$(grep -c '\.unwrap()\|\.expect(' "$SRC" || true)
    [ "$N" -eq 0 ] && continue
    BUDGET=$(awk -v f="$SRC" '$1 == f { print $2 }' scripts/unwrap_allowlist.txt)
    if [ -z "$BUDGET" ]; then
        echo "FAIL: $SRC has $N unwrap()/expect( call(s) but no allowlist entry"
        UNWRAP_FAIL=1
    elif [ "$N" -gt "$BUDGET" ]; then
        echo "FAIL: $SRC has $N unwrap()/expect( call(s), budget is $BUDGET"
        UNWRAP_FAIL=1
    fi
done < <(find crates -path 'crates/*/src/*' -name '*.rs' | sort)
if [ "$UNWRAP_FAIL" -ne 0 ]; then
    echo "FAIL: unwrap/expect budget exceeded; thread the error or justify a budget bump"
    exit 1
fi
echo "unwrap/expect budgets hold"

echo "== verifier gate: tier-1 tests with GTPIN_VERIFY=1"
# Every rewrite the test suite performs is re-proved safe in-line.
GTPIN_VERIFY=1 cargo test -q

echo "== fault-matrix smoke: tier-1 tests armed-but-quiescent under GTPIN_FAULTS=1"
# Armed with all rates zero: every instrumented seam runs its check
# path but nothing fires, so results must stay green and bit-identical.
GTPIN_FAULTS=1 GTPIN_FAULTS_SEED=42 cargo test -q

echo "== fault-matrix: every scenario twice, degradation contract asserted"
MATRIX_OUT="$(cargo run -q --release --bin gtpin -- faults-matrix --seed 42 2>&1)" || {
    echo "$MATRIX_OUT"
    echo "FAIL: faults-matrix reported contract violations"
    exit 1
}
echo "$MATRIX_OUT" | grep -q "honored the degradation contract" || {
    echo "$MATRIX_OUT"
    echo "FAIL: faults-matrix did not emit its degradation summary"
    exit 1
}

echo "== kill-and-resume smoke: SIGKILL mid-sweep, resume, diff vs uninterrupted"
RESUME_DIR="$(pwd)/target/resume-check"
rm -rf "$RESUME_DIR"
mkdir -p "$RESUME_DIR"
SMOKE_APPS=(sandra-crypt-aes128 sandra-crypt-aes256)
./target/release/gtpin explore "${SMOKE_APPS[@]}" \
    > "$RESUME_DIR/baseline.txt" 2>/dev/null
./target/release/gtpin explore "${SMOKE_APPS[@]}" \
    --journal "$RESUME_DIR/journal" >/dev/null 2>&1 &
SWEEP_PID=$!
# Kill only once real progress is journaled (>= 2 sealed segments); if
# the sweep finishes first, resume degenerates to a full replay — the
# diff below must hold either way.
for _ in $(seq 1 200); do
    if ! kill -0 "$SWEEP_PID" 2>/dev/null; then
        break
    fi
    SEGS=$(ls "$RESUME_DIR/journal" 2>/dev/null | grep -c '^seg-.*\.log$' || true)
    if [ "$SEGS" -ge 2 ]; then
        kill -9 "$SWEEP_PID" 2>/dev/null || true
        break
    fi
    sleep 0.01
done
wait "$SWEEP_PID" 2>/dev/null || true
./target/release/gtpin explore "${SMOKE_APPS[@]}" \
    --resume "$RESUME_DIR/journal" \
    > "$RESUME_DIR/resumed.txt" 2>"$RESUME_DIR/resume-stderr.txt"
diff -u "$RESUME_DIR/baseline.txt" "$RESUME_DIR/resumed.txt" || {
    echo "FAIL: resumed sweep report differs from the uninterrupted baseline"
    exit 1
}
grep -q "replayed from the journal" "$RESUME_DIR/resume-stderr.txt" || {
    cat "$RESUME_DIR/resume-stderr.txt"
    echo "FAIL: resume did not report replayed units on stderr"
    exit 1
}
echo "resumed report is byte-identical to the uninterrupted baseline"

echo "== chaos gate: fixed seeds, digest pinned, 1 vs 4 threads diffed, kill/resume diffed"
# Four seeded scenarios through the full pipeline (profile, sweep
# crash/resume, serve kill/resume) under multi-site fault plans. The
# digest folds every stage digest plus fault accounting, so it pins
# scenario derivation, fault injection, recovery, and the oracles all
# at once. Re-pin only after reviewing what changed.
CHAOS_DIGEST=0x21c5752636e97fa7
CHAOS_DIR="$(pwd)/target/chaos-check"
rm -rf "$CHAOS_DIR"
mkdir -p "$CHAOS_DIR"
GTPIN_THREADS=1 ./target/release/gtpin chaos --seeds 4 --seed-base 42 \
    > "$CHAOS_DIR/t1.txt"
GTPIN_THREADS=4 ./target/release/gtpin chaos --seeds 4 --seed-base 42 \
    > "$CHAOS_DIR/t4.txt"
diff -u "$CHAOS_DIR/t1.txt" "$CHAOS_DIR/t4.txt" || {
    echo "FAIL: chaos digest is not independent of GTPIN_THREADS"
    exit 1
}
grep -q "digest $CHAOS_DIGEST" "$CHAOS_DIR/t1.txt" || {
    tail -3 "$CHAOS_DIR/t1.txt"
    echo "FAIL: chaos digest drifted from pinned $CHAOS_DIGEST"
    exit 1
}
# Kill/resume identity of the chaos run itself: journal two scenarios,
# then resume the full range — completed scenarios replay from the
# journal and the output must be byte-identical to the uninterrupted
# run above.
./target/release/gtpin chaos --seeds 2 --seed-base 42 \
    --journal "$CHAOS_DIR/journal" >/dev/null
./target/release/gtpin chaos --seeds 4 --seed-base 42 \
    --resume "$CHAOS_DIR/journal" > "$CHAOS_DIR/resumed.txt"
diff -u "$CHAOS_DIR/t1.txt" "$CHAOS_DIR/resumed.txt" || {
    echo "FAIL: resumed chaos run diverged from the uninterrupted run"
    exit 1
}
# The shrinker self-test: a seeded multi-site failure must reduce to
# its single guilty site.
./target/release/gtpin chaos --self-test
echo "chaos digest matches pinned $CHAOS_DIGEST at 1 and 4 threads, kill/resume identical"

echo "== serve gate: daemon, 4 concurrent clients, SIGKILL mid-session, --resume, diff"
SERVE_DIR="$(pwd)/target/serve-check"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR"
SOCK="$SERVE_DIR/gtpin.sock"
SERVE_REQS=(
    "explore sandra-crypt-aes128 --scale test"
    "sim sandra-crypt-aes128 --launches 2"
    "lint sandra-crypt-aes128"
    "sim sandra-crypt-aes256 --launches 2"
)
# A SIGKILL'd daemon leaves a stale socket file behind; the daemon's
# liveness probe detects the corpse and rebinds on its own, so no
# stage removes the socket — a still-live daemon stays protected.
wait_for_sock() {
    for _ in $(seq 1 3000); do
        [ -S "$SOCK" ] && return 0
        sleep 0.01
    done
    echo "FAIL: daemon never bound $SOCK"
    exit 1
}

# Uninterrupted baseline daemon: serve the four requests, then drain
# it with SIGTERM (the graceful path).
./target/release/gtpin serve --socket "$SOCK" 2>"$SERVE_DIR/baseline-daemon.log" &
DAEMON_PID=$!
wait_for_sock
for i in 0 1 2 3; do
    # shellcheck disable=SC2086
    ./target/release/gtpin request ${SERVE_REQS[$i]} --socket "$SOCK" \
        > "$SERVE_DIR/baseline-$i.txt"
done
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || {
    cat "$SERVE_DIR/baseline-daemon.log"
    echo "FAIL: daemon did not drain cleanly on SIGTERM"
    exit 1
}
[ -S "$SOCK" ] && {
    echo "FAIL: drained daemon left its socket behind"
    exit 1
}

# Journaled daemon: the same four requests as concurrent clients, then
# SIGKILL once sessions are journaled. Clients cut off mid-delivery
# may fail; their responses are re-fetched after resume.
./target/release/gtpin serve --socket "$SOCK" --journal "$SERVE_DIR/journal" \
    2>"$SERVE_DIR/killed-daemon.log" &
DAEMON_PID=$!
wait_for_sock
for i in 0 1 2 3; do
    # shellcheck disable=SC2086
    ./target/release/gtpin request ${SERVE_REQS[$i]} --socket "$SOCK" \
        >/dev/null 2>&1 &
done
# Kill only once real progress is journaled (>= 5 sealed records: the
# four Starts plus at least one Finish, so resume exercises replay and
# recompute together); if the daemon gets every session durable first,
# resume degenerates to a full replay — the diff below must hold
# either way.
for _ in $(seq 1 2000); do
    if ! kill -0 "$DAEMON_PID" 2>/dev/null; then
        break
    fi
    SEGS=$(ls "$SERVE_DIR/journal" 2>/dev/null | grep -c '^seg-.*\.log$' || true)
    if [ "$SEGS" -ge 5 ]; then
        kill -9 "$DAEMON_PID" 2>/dev/null || true
        break
    fi
    sleep 0.01
done
wait "$DAEMON_PID" 2>/dev/null || true
wait || true

# Restart with --resume, over the SIGKILL'd daemon's stale socket —
# the liveness probe must reclaim it. Completed sessions replay from
# the journal, interrupted ones recompute; every response must be
# byte-identical to the uninterrupted baseline.
./target/release/gtpin serve --socket "$SOCK" --resume "$SERVE_DIR/journal" \
    2>"$SERVE_DIR/resumed-daemon.log" &
DAEMON_PID=$!
wait_for_sock
for i in 0 1 2 3; do
    # shellcheck disable=SC2086
    ./target/release/gtpin request ${SERVE_REQS[$i]} --socket "$SOCK" \
        > "$SERVE_DIR/resumed-$i.txt"
    diff -u "$SERVE_DIR/baseline-$i.txt" "$SERVE_DIR/resumed-$i.txt" || {
        echo "FAIL: resumed daemon response $i differs from the uninterrupted baseline"
        exit 1
    }
done
kill -TERM "$DAEMON_PID"
wait "$DAEMON_PID" || true
echo "resumed daemon responses are byte-identical to the uninterrupted baseline"

echo "OK"
