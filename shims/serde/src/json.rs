//! The JSON document model shared by the vendored `serde` and
//! `serde_json`: a value tree, an exact-integer number type, a
//! renderer, and a recursive-descent parser.

use std::fmt;

/// A JSON number, keeping 64-bit integers exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative (or any signed) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (ordered key/value pairs).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// As u64 when losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(Number::U(n)) => Some(*n),
            Value::Num(Number::I(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// As i64 when losslessly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(Number::I(n)) => Some(*n),
            Value::Num(Number::U(n)) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// As f64 (integers convert; `null` reads as NaN so non-finite
    /// floats round-trip through their `null` serialization).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(Number::F(x)) => Some(*x),
            Value::Num(Number::U(n)) => Some(*n as f64),
            Value::Num(Number::I(n)) => Some(*n as f64),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// As an object's pairs.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// As an array's items.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// One-word description for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// Look up a field in an object's pairs (missing field reads as
/// `Null`, so `Option` fields can be omitted).
pub fn obj_get<'a>(pairs: &'a [(String, Value)], key: &str) -> &'a Value {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

/// Serialization / deserialization failure.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// An error with a literal message.
    pub fn msg(m: impl Into<String>) -> Error {
        Error { message: m.into() }
    }

    /// A type-mismatch error.
    pub fn ty(expected: &str, got: &Value) -> Error {
        Error {
            message: format!("expected {expected}, got {}", got.kind()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.message)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match n {
        Number::U(v) => out.push_str(&v.to_string()),
        Number::I(v) => out.push_str(&v.to_string()),
        Number::F(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                // serde_json's behaviour: non-finite floats become null.
                out.push_str("null");
            }
        }
    }
}

/// Render compactly.
pub fn render(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, n),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, k);
                out.push(':');
                render(item, out);
            }
            out.push('}');
        }
    }
}

/// Render with two-space indentation.
pub fn render_pretty(v: &Value, out: &mut String, indent: usize) {
    let pad = |out: &mut String, n: usize| {
        for _ in 0..n {
            out.push_str("  ");
        }
    };
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(out, indent + 1);
                write_escaped(out, k);
                out.push_str(": ");
                render_pretty(item, out, indent + 1);
            }
            out.push('\n');
            pad(out, indent);
            out.push('}');
        }
        other => render(other, out),
    }
}

// ---------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error::msg("unexpected end of input")),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("bad literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("bad literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("bad literal"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(Error::msg("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value()?;
                    pairs.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(Error::msg("expected ',' or '}'")),
                    }
                }
            }
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("bad \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::msg("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::msg("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::msg("invalid number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(i) = text.parse::<i64>() {
                        return Ok(Value::Num(Number::I(i)));
                    }
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::msg("invalid number"))
    }
}

/// Parse a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    Ok(v)
}
