//! Offline stand-in for the `serde` crate.
//!
//! The registry is unreachable in this build environment, so the
//! workspace vendors a minimal replacement with the same import
//! surface the codebase uses: `serde::{Serialize, Deserialize}` as
//! derivable traits. Instead of serde's serializer/visitor
//! machinery, both traits go through one concrete JSON document
//! model ([`json::Value`]) — `serde_json` (also vendored) renders
//! and parses it.
//!
//! Fidelity notes:
//! - `u64`/`i64` round-trip exactly (no silent f64 conversion).
//! - `f64` uses Rust's shortest-round-trip `Display`, so
//!   serialize → parse reproduces bits for finite values.
//! - Maps serialize as JSON objects with stringified keys, enums as
//!   `"Variant"` / `{"Variant": ...}`, mirroring serde_json's
//!   externally-tagged default.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

use json::{Error, Value};

/// Types renderable to a JSON document.
pub trait Serialize {
    /// Convert to the JSON document model.
    fn to_json(&self) -> Value;
}

/// Types reconstructible from a JSON document.
pub trait Deserialize: Sized {
    /// Reconstruct from the JSON document model.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Num(json::Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<$t, Error> {
                let n = v.as_u64().ok_or_else(|| Error::ty(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Num(json::Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_json(v: &Value) -> Result<$t, Error> {
                let n = v.as_i64().ok_or_else(|| Error::ty(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Value {
        Value::Num(json::Number::F(*self))
    }
}
impl Deserialize for f64 {
    fn from_json(v: &Value) -> Result<f64, Error> {
        v.as_f64().ok_or_else(|| Error::ty("f64", v))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        Value::Num(json::Number::F(*self as f64))
    }
}
impl Deserialize for f32 {
    fn from_json(v: &Value) -> Result<f32, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::ty("f32", v))? as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_json(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::ty("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_json(v: &Value) -> Result<String, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::ty("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Upstream serde borrows `&'de str` from the input document;
    /// this model owns its strings, so reconstruct by leaking. Only
    /// hit when deserializing config structs with literal names —
    /// small, rare, and bounded by the number of parsed documents.
    fn from_json(v: &Value) -> Result<&'static str, Error> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(Error::ty("string", other)),
        }
    }
}

impl Serialize for char {
    fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_json(v: &Value) -> Result<char, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::ty("char", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Value) -> Result<Box<T>, Error> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_json(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(Error::ty("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json(v: &Value) -> Result<[T; N], Error> {
        let items: Vec<T> = Vec::from_json(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length mismatch"))
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_json(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_json()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_json(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => {
                        let mut it = items.iter();
                        Ok(($(
                            $name::from_json(
                                it.next().ok_or_else(|| Error::msg("tuple too short"))?,
                            )?,
                        )+))
                    }
                    other => Err(Error::ty("tuple array", other)),
                }
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys representable as JSON object keys.
pub trait JsonKey: Sized + Ord {
    /// Render as an object key.
    fn key_string(&self) -> String;
    /// Parse back from an object key.
    fn key_parse(s: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn key_string(&self) -> String {
        self.clone()
    }
    fn key_parse(s: &str) -> Result<String, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_json_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn key_string(&self) -> String {
                self.to_string()
            }
            fn key_parse(s: &str) -> Result<$t, Error> {
                s.parse().map_err(|_| Error::msg("bad integer map key"))
            }
        }
    )*};
}
int_json_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: JsonKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.key_string(), v.to_json()))
                .collect(),
        )
    }
}
impl<K: JsonKey, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::key_parse(k)?, V::from_json(v)?)))
                .collect(),
            other => Err(Error::ty("object", other)),
        }
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Serialize> Serialize
    for std::collections::HashMap<K, V>
{
    fn to_json(&self) -> Value {
        // Sort for stable output (HashMap iteration order varies).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.key_string(), v.to_json()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}
impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize> Deserialize
    for std::collections::HashMap<K, V>
{
    fn from_json(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((K::key_parse(k)?, V::from_json(v)?)))
                .collect(),
            other => Err(Error::ty("object", other)),
        }
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_json(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}
