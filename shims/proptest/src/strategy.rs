//! The `Strategy` trait and its combinators.

use crate::TestRng;

/// Recipes for generating random values of one type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value from the deterministic source.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a dependent strategy from each generated value.
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Always-the-same-value strategy.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Dependent strategy (see [`Strategy::prop_flat_map`]).
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;
    fn generate(&self, rng: &mut TestRng) -> O::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Uniform choice among boxed alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from non-empty alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! requires alternatives");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span + 1) as $t
                }
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = self.start + u * (self.end - self.start);
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // Left-to-right order: fixed for determinism.
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
}

impl<S: Strategy> Strategy for Vec<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        self.iter().map(|s| s.generate(rng)).collect()
    }
}
