//! Deterministic property-test runner (no shrinking).

use crate::{Strategy, TestRng};

/// How a `proptest!` block executes.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Default config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// Stable seed derived from the test name (FNV-1a), so each test's
/// case stream is fixed across runs and machines.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Run `body` against `config.cases` generated inputs; panic with
/// the case number and message on the first failure.
pub fn run_property<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut body: F)
where
    S: Strategy,
    F: FnMut(S::Value) -> Result<(), String>,
{
    let seed = name_seed(name);
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(seed ^ ((case as u64) << 32 | case as u64));
        let value = strategy.generate(&mut rng);
        if let Err(msg) = body(value) {
            panic!(
                "property '{name}' failed at case {case}/{} (seed {seed:#x}):\n{msg}",
                config.cases
            );
        }
    }
}
