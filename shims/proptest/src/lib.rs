//! Offline stand-in for the `proptest` crate.
//!
//! Supports the surface this workspace's property tests use:
//! `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!`, `Strategy` with `prop_map`/`prop_flat_map`/
//! `boxed`, `Just`, `any::<T>()`, integer-range strategies, tuple and
//! `Vec<Strategy>` composition, `prop::sample::select`,
//! `prop::collection::vec`, `prop::option::of`, `prop::bool::ANY`,
//! and `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failure reports the
//! case number and message only), and cases are generated from a
//! fixed per-test seed (hash of the test name), so runs are fully
//! deterministic and reproducible.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Deterministic random source for value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed via splitmix64 expansion (xoshiro256++ state).
    pub fn seed_from_u64(seed: u64) -> TestRng {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        let mut st = seed;
        TestRng {
            s: [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ],
        }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arb_from(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arb_from(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arb_from(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy yielding any value of `A` (`any::<u32>()` etc.).
pub struct Any<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arb_from(rng)
    }
}

/// The canonical strategy for `A`: uniform over the whole domain.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(std::marker::PhantomData)
}

/// Strategy source modules (`prop::sample::select` and friends).
pub mod prop {
    /// Strategies drawing from explicit value lists.
    pub mod sample {
        use crate::{Strategy, TestRng};

        /// Uniform choice from a fixed list.
        pub struct Select<T>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Pick uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires options");
            Select(options)
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Sizes a generated collection may take.
        pub struct SizeRange {
            min: usize,
            max: usize, // inclusive
        }

        /// Conversions into [`SizeRange`].
        pub trait IntoSizeRange {
            /// Convert to the canonical size range.
            fn into_size_range(self) -> SizeRange;
        }

        impl IntoSizeRange for usize {
            fn into_size_range(self) -> SizeRange {
                SizeRange {
                    min: self,
                    max: self,
                }
            }
        }
        impl IntoSizeRange for std::ops::Range<usize> {
            fn into_size_range(self) -> SizeRange {
                assert!(self.start < self.end, "empty size range");
                SizeRange {
                    min: self.start,
                    max: self.end - 1,
                }
            }
        }
        impl IntoSizeRange for std::ops::RangeInclusive<usize> {
            fn into_size_range(self) -> SizeRange {
                SizeRange {
                    min: *self.start(),
                    max: *self.end(),
                }
            }
        }

        /// Vec of values drawn from an element strategy.
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.max - self.size.min + 1) as u64;
                let len = self.size.min + rng.below(span) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        /// `Vec` strategy with length drawn from `size`.
        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into_size_range(),
            }
        }
    }

    /// `Option` strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// `Option` of an inner strategy (3/4 `Some`).
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.generate(rng))
                }
            }
        }

        /// Sometimes-`None` wrapper around `inner`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// `bool` strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Clone, Copy)]
        pub struct BoolAny;

        /// Either boolean, equally likely.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

// ---------------------------------------------------------------
// Macros
// ---------------------------------------------------------------

/// Define property tests: each `#[test] fn name(x in strat, ..)`
/// runs `ProptestConfig.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($bind:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_property(
                stringify!($name),
                &__config,
                &__strategy,
                |($($bind,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Define a named strategy function from component strategies.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($argn:ident: $argt:ty),* $(,)?)
        ($($bind:ident in $strat:expr),+ $(,)?)
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($argn: $argt),*) -> impl $crate::Strategy<Value = $ret> {
            $crate::Strategy::prop_map(
                ($($strat,)+),
                move |($($bind,)+)| $body,
            )
        }
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Assert inside a property test; failure reports the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!(
                "assertion failed: {} ({})",
                stringify!($cond),
                format!($($fmt)+)
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return Err(format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                format!($($fmt)+),
                __l,
                __r
            ));
        }
    }};
}
