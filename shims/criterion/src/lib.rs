//! Offline stand-in for the `criterion` crate.
//!
//! Wall-clock timing only: each benchmark runs a warm-up iteration,
//! then `sample_size` timed samples, and prints min/mean/max. No
//! statistical analysis, HTML reports, or baseline comparison — but
//! the macro and builder surface matches what this workspace's
//! benches use, so `cargo bench` works offline.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value sink preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Benchmark registry and configuration root.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Override the default sample count for subsequent groups.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        run_bench(name, self.sample_size, f);
        self
    }

    /// Criterion CLI entry point (no-op here; benches call targets).
    pub fn final_summary(&mut self) {}

    /// Upstream parses CLI args here; the shim ignores them.
    pub fn configure_from_args(self) -> Criterion {
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    _parent: &'c mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_bench(&full, self.sample_size, f);
        self
    }

    /// Run one parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_bench(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Close the group (upstream emits the report here).
    pub fn finish(self) {}
}

/// A benchmark's display identifier.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Identifier from a function name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Values convertible into a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// Perform the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}
impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}
impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Times closures inside a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    per_sample: usize,
}

impl Bencher {
    /// Time `routine`, collecting one duration per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (untimed).
        black_box(routine());
        for _ in 0..self.per_sample {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        per_sample: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name}: no samples (b.iter never called)");
        return;
    }
    let min = bencher.samples.iter().min().expect("non-empty");
    let max = bencher.samples.iter().max().expect("non-empty");
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    println!(
        "{name}: time [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Group benchmark target functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
