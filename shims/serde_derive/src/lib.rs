//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]`
//! against the vendored `serde` shim's JSON-value traits. The parser
//! walks the raw `TokenStream` (no `syn`/`quote` available offline)
//! and supports what this workspace uses: non-generic named/tuple/
//! unit structs and enums with unit, tuple, and struct variants
//! (including explicit discriminants, which are ignored).
//!
//! JSON shapes match serde_json's externally-tagged defaults closely
//! enough for round-tripping within this workspace:
//! named struct → object, tuple struct → array, unit variant →
//! `"Name"`, data variant → `{"Name": ...}`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Parse the derive input down to (type name, shape).
fn parse_input(input: TokenStream) -> (String, Shape) {
    let mut iter = input.into_iter().peekable();
    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected struct/enum, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic type {name}");
        }
    }
    let shape = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde shim derive: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde shim derive: cannot derive for {other}"),
    };
    (name, shape)
}

/// Field names of a named-struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut names = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        names.push(id.to_string());
        // Expect ':', then consume the type until a top-level ','.
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde shim derive: expected ':' after field, got {other:?}"),
        }
        let mut angle: i32 = 0;
        for tt in iter.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
    }
    names
}

/// Number of fields in a tuple-struct/tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0;
    let mut any = false;
    let mut angle: i32 = 0;
    for tt in body {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                count += 1;
                any = false;
            }
            _ => any = true,
        }
    }
    if any {
        count += 1;
    }
    count
}

/// Variants of an enum body. Explicit discriminants are skipped.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = iter.next() else {
            break;
        };
        let name = id.to_string();
        let mut fields = VariantFields::Unit;
        if let Some(TokenTree::Group(g)) = iter.peek() {
            fields = match g.delimiter() {
                Delimiter::Parenthesis => VariantFields::Tuple(count_tuple_fields(g.stream())),
                Delimiter::Brace => VariantFields::Named(parse_named_fields(g.stream())),
                _ => VariantFields::Unit,
            };
            iter.next();
        }
        // Skip "= <discriminant expr>" up to the separating comma.
        loop {
            match iter.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__o.push((\"{f}\".to_string(), ::serde::Serialize::to_json(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "let mut __o: Vec<(String, ::serde::json::Value)> = Vec::new();\n{pushes}::serde::json::Value::Obj(__o)"
            )
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_json(&self.{i})"))
                .collect();
            format!("::serde::json::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::json::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "{name}::{vn} => ::serde::json::Value::Str(\"{vn}\".to_string()),\n"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({binds}) => ::serde::json::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::json::Value::Arr(vec![{items}]))]),\n",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let binds = fields.join(", ");
                            let pushes: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_json({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::json::Value::Obj(vec![(\"{vn}\".to_string(), ::serde::json::Value::Obj(vec![{pushes}]))]),\n",
                                pushes = pushes.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_json(&self) -> ::serde::json::Value {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json(::serde::json::obj_get(__pairs, \"{f}\"))?,\n"
                    )
                })
                .collect();
            format!(
                "let __pairs = __v.as_obj().ok_or_else(|| ::serde::json::Error::ty(\"{name} object\", __v))?;\nOk({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_json(__items.get({i}).unwrap_or(&::serde::json::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let __items = __v.as_arr().ok_or_else(|| ::serde::json::Error::ty(\"{name} array\", __v))?;\nOk({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let str_arms: String = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{vn}\" => return Ok({name}::{vn}),\n", vn = v.name))
                .collect();
            let obj_arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "\"{vn}\" => return Ok({name}::{vn}),\n"
                        ),
                        VariantFields::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_json(__items.get({i}).unwrap_or(&::serde::json::Value::Null))?"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __items = __payload.as_arr().ok_or_else(|| ::serde::json::Error::ty(\"{vn} payload array\", __payload))?; return Ok({name}::{vn}({inits})); }}\n",
                                inits = inits.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_json(::serde::json::obj_get(__vp, \"{f}\"))?,\n"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{ let __vp = __payload.as_obj().ok_or_else(|| ::serde::json::Error::ty(\"{vn} payload object\", __payload))?; return Ok({name}::{vn} {{ {inits} }}); }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n ::serde::json::Value::Str(__s) => {{ match __s.as_str() {{\n{str_arms} _ => {{}} }} }}\n ::serde::json::Value::Obj(__pairs) if __pairs.len() == 1 => {{\n let (__tag, __payload) = &__pairs[0];\n match __tag.as_str() {{\n{obj_arms} _ => {{}} }} }}\n _ => {{}}\n}}\nErr(::serde::json::Error::ty(\"{name} variant\", __v))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_json(__v: &::serde::json::Value) -> Result<{name}, ::serde::json::Error> {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("serde shim derive: generated Deserialize impl parses")
}
