//! Offline stand-in for the `rand` crate.
//!
//! Provides the exact surface this workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::gen_range` over half-open
//! integer and float ranges — backed by xoshiro256++ seeded through
//! splitmix64. The stream differs from upstream rand's ChaCha-based
//! `StdRng`, but every consumer in this workspace treats the RNG as
//! an opaque deterministic source, which this is: the same seed
//! always yields the same sequence, on every platform.

use std::ops::Range;

/// Sources of raw random words.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministically constructible generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_one(self, rng: &mut dyn RngCore) -> T;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Uniform draw from `range` (half-open).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_one(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded draw (Lemire); bias over a
                // 64-bit source is immaterial here and the result is
                // deterministic, which is what the callers need.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits → u in [0, 1).
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let x = self.start + u * (self.end - self.start);
        // Guard the open upper bound against rounding.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_one(self, rng: &mut dyn RngCore) -> f32 {
        let wide = (self.start as f64)..(self.end as f64);
        let x = wide.sample_one(rng) as f32;
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic default generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12 `StdRng`; same role, different
    /// (still fixed, portable) stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut st = seed;
            StdRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0u64..1_000_000).to_le_bytes(),
                b.gen_range(0u64..1_000_000).to_le_bytes()
            );
            assert_eq!(
                a.gen_range(0.0f64..3.5).to_bits(),
                b.gen_range(0.0f64..3.5).to_bits()
            );
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(0.7f64..1.3);
            assert!((0.7..1.3).contains(&f));
        }
    }
}
