//! Offline stand-in for `serde_json`.
//!
//! Thin façade over the vendored `serde` shim's JSON document model:
//! `to_string`/`to_string_pretty` render a [`serde::Serialize`]
//! value, `from_str` parses text and reconstructs a
//! [`serde::Deserialize`] value. Finite `f64`s round-trip bitwise
//! (shortest-round-trip rendering); `u64` keys and values stay exact.

pub use serde::json::{Error, Number, Value};

/// Render a value as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::render(&value.to_json(), &mut out);
    Ok(out)
}

/// Render a value as human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::json::render_pretty(&value.to_json(), &mut out, 0);
    Ok(out)
}

/// Parse JSON text into a value.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    T::from_json(&serde::json::parse(s)?)
}

/// Parse JSON text into the raw document model.
pub fn from_str_value(s: &str) -> Result<Value, Error> {
    serde::json::parse(s)
}
